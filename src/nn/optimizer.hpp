// First-order optimizers over a network's (params, grads) pairs.
// An optimizer binds to a specific network at construction (the param
// pointers are captured) and keeps per-parameter state (momentum / Adam
// moments) aligned with them.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace fedra {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step using the currently accumulated gradients.
  virtual void step() = 0;

  /// Zeroes the bound network's gradients.
  void zero_grad();

  /// Global gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

 protected:
  explicit Optimizer(Layer& network);
  /// Binds explicit (param, grad) lists — for composite models that are
  /// not a single Layer (e.g. a Gaussian policy's network + free log-std).
  Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads);

  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(Layer& network, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  Sgd(std::vector<Matrix*> params, std::vector<Matrix*> grads, double lr,
      double momentum = 0.0, double weight_decay = 0.0);

  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(Layer& network, double lr, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8);
  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads, double lr,
       double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  // Optimizer state, exposed for checkpointing (fedra::ckpt). Bias
  // correction depends on the step counter, so a bit-exact resume must
  // restore t alongside the moment estimates.
  std::size_t timestep() const { return t_; }
  const std::vector<Matrix>& moment1() const { return m_; }
  const std::vector<Matrix>& moment2() const { return v_; }

  /// Restores a snapshot; moment shapes must match the bound parameters.
  void restore_state(std::size_t t, std::vector<Matrix> m,
                     std::vector<Matrix> v);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace fedra
