#include "nn/dense.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace fedra {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
             Init init)
    : weight_(in_features, out_features),
      bias_(1, out_features),
      grad_weight_(in_features, out_features),
      grad_bias_(1, out_features) {
  FEDRA_EXPECTS(in_features > 0 && out_features > 0);
  switch (init) {
    case Init::Xavier: {
      const double limit =
          std::sqrt(6.0 / static_cast<double>(in_features + out_features));
      weight_ = Matrix::random_uniform(in_features, out_features, rng, -limit,
                                       limit);
      break;
    }
    case Init::He: {
      const double std = std::sqrt(2.0 / static_cast<double>(in_features));
      weight_ =
          Matrix::random_gaussian(in_features, out_features, rng, 0.0, std);
      break;
    }
    case Init::Zero:
      break;  // already zeroed
  }
}

Matrix Dense::forward(const Matrix& input) {
  FEDRA_EXPECTS(input.cols() == weight_.rows());
  cached_input_ = input;
  Matrix out = matmul(input, weight_);
  add_row_broadcast(out, bias_);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  FEDRA_EXPECTS(grad_output.rows() == cached_input_.rows());
  FEDRA_EXPECTS(grad_output.cols() == weight_.cols());
  grad_weight_ += matmul_at_b(cached_input_, grad_output);
  grad_bias_ += col_sum(grad_output);
  return matmul_a_bt(grad_output, weight_);
}

}  // namespace fedra
