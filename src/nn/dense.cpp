#include "nn/dense.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace fedra {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
             Init init)
    : weight_(in_features, out_features),
      bias_(1, out_features),
      grad_weight_(in_features, out_features),
      grad_bias_(1, out_features) {
  FEDRA_EXPECTS(in_features > 0 && out_features > 0);
  switch (init) {
    case Init::Xavier: {
      const double limit =
          std::sqrt(6.0 / static_cast<double>(in_features + out_features));
      weight_ = Matrix::random_uniform(in_features, out_features, rng, -limit,
                                       limit);
      break;
    }
    case Init::He: {
      const double std = std::sqrt(2.0 / static_cast<double>(in_features));
      weight_ =
          Matrix::random_gaussian(in_features, out_features, rng, 0.0, std);
      break;
    }
    case Init::Zero:
      break;  // already zeroed
  }
}

Matrix Dense::forward(const Matrix& input) {
  FEDRA_EXPECTS(input.cols() == weight_.rows());
  // Legacy (allocating) entry: the caller's input may die before
  // backward, so keep a copy — but reuse cached_input_'s heap block
  // instead of reallocating it every step.
  cached_input_.assign_from(input);
  Matrix out;
  forward_into(cached_input_, out);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  Matrix grad_in;
  backward_into(grad_output, grad_in);
  return grad_in;
}

void Dense::forward_into(const Matrix& input, Matrix& out) {
  FEDRA_EXPECTS(input.cols() == weight_.rows());
  input_ref_ = &input;  // caller keeps `input` alive until backward
  matmul_into(input, weight_, out);
  add_row_broadcast(out, bias_);
}

void Dense::backward_into(const Matrix& grad_output, Matrix& grad_in) {
  FEDRA_EXPECTS(input_ref_ != nullptr);
  const Matrix& x = *input_ref_;
  FEDRA_EXPECTS(grad_output.rows() == x.rows());
  FEDRA_EXPECTS(grad_output.cols() == weight_.cols());
  matmul_at_b_into(x, grad_output, gw_scratch_);
  grad_weight_ += gw_scratch_;
  col_sum_into(grad_output, gb_scratch_);
  grad_bias_ += gb_scratch_;
  matmul_a_bt_into(grad_output, weight_, grad_in);
}

void Dense::forward_gemm_into(const Matrix& input, Matrix& pre) {
  FEDRA_EXPECTS(input.cols() == weight_.rows());
  input_ref_ = &input;  // caller keeps `input` alive until backward
  matmul_into(input, weight_, pre);
}

void Dense::backward_gemms_into(const Matrix& grad_pre, Matrix& grad_in) {
  FEDRA_EXPECTS(input_ref_ != nullptr);
  const Matrix& x = *input_ref_;
  FEDRA_EXPECTS(grad_pre.rows() == x.rows());
  FEDRA_EXPECTS(grad_pre.cols() == weight_.cols());
  matmul_at_b_into(x, grad_pre, gw_scratch_);
  grad_weight_ += gw_scratch_;
  matmul_a_bt_into(grad_pre, weight_, grad_in);
}

}  // namespace fedra
