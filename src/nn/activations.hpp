// Stateless activation layers. Each caches what its derivative needs.
#pragma once

#include "nn/layer.hpp"

namespace fedra {

class ReLU final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(double slope = 0.01) : slope_(slope) {}
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  double slope_;
  Matrix cached_input_;
};

class Tanh final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
};

class Sigmoid final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Matrix cached_output_;
};

/// Row-wise softmax. Usually fused into SoftmaxCrossEntropy for training;
/// exposed as a layer for inference-time probability outputs.
class Softmax final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "Softmax"; }

 private:
  Matrix cached_output_;
};

/// Row-wise softmax as a free function (numerically stabilized).
Matrix softmax_rows(const Matrix& logits);

}  // namespace fedra
