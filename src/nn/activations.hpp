// Stateless activation layers. Each caches what its derivative needs —
// on the workspace path that is a pointer into the caller's stable
// buffers (zero copies); on the legacy path, a reused member copy.
#pragma once

#include "nn/layer.hpp"

namespace fedra {

class ReLU final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_in) override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
  const Matrix* input_ref_ = nullptr;
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(double slope = 0.01) : slope_(slope) {}
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_in) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  double slope_;
  Matrix cached_input_;
  const Matrix* input_ref_ = nullptr;
};

class Tanh final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_in) override;
  std::string name() const override { return "Tanh"; }

  /// Fusion hook (nn/fused.hpp): when Sequential computes this layer's
  /// output via the fused dense+bias+activation pass, it binds the fused
  /// result here so a later backward_into reads the right y.
  void bind_output(const Matrix& y) { output_ref_ = &y; }

 private:
  Matrix cached_output_;
  const Matrix* output_ref_ = nullptr;
};

class Sigmoid final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_in) override;
  std::string name() const override { return "Sigmoid"; }

  /// Fusion hook; see Tanh::bind_output.
  void bind_output(const Matrix& y) { output_ref_ = &y; }

 private:
  Matrix cached_output_;
  const Matrix* output_ref_ = nullptr;
};

/// Row-wise softmax. Usually fused into SoftmaxCrossEntropy for training;
/// exposed as a layer for inference-time probability outputs.
class Softmax final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_in) override;
  std::string name() const override { return "Softmax"; }

 private:
  Matrix cached_output_;
  const Matrix* output_ref_ = nullptr;
};

/// Row-wise softmax as a free function (numerically stabilized).
Matrix softmax_rows(const Matrix& logits);

/// Row-wise softmax into a caller-owned buffer (capacity reused; `out`
/// may alias `logits` — normalization is in place per row).
void softmax_rows_into(const Matrix& logits, Matrix& out);

}  // namespace fedra
