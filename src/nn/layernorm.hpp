// Layer normalization (Ba et al.): per-row standardization with learned
// gain/bias. Stabilizes the deeper actor/critic variants without the
// batch-size coupling of batch norm (rollout minibatches are small and
// correlated, so batch statistics would be noisy).
#pragma once

#include "nn/layer.hpp"

namespace fedra {

class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(std::size_t features, double epsilon = 1e-5);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Matrix*> params() override { return {&gain_, &bias_}; }
  std::vector<Matrix*> grads() override { return {&grad_gain_, &grad_bias_}; }
  std::string name() const override { return "LayerNorm"; }

  std::size_t features() const { return gain_.cols(); }

 private:
  double epsilon_;
  Matrix gain_;   ///< 1 x features, initialized to 1
  Matrix bias_;   ///< 1 x features, initialized to 0
  Matrix grad_gain_;
  Matrix grad_bias_;
  // Forward caches for the backward pass.
  Matrix normalized_;   ///< x_hat
  std::vector<double> inv_std_;  ///< 1/sqrt(var + eps) per row
};

}  // namespace fedra
