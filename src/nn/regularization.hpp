// Regularization layers and schedules: inverted dropout and learning-rate
// schedulers for the optimizers. Dropout has distinct train/eval modes —
// eval is the identity (inverted scaling happens at train time).
#pragma once

#include <memory>

#include "nn/layer.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace fedra {

/// Inverted dropout: at train time each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p); at eval time the
/// layer is the identity. The mask is cached for the backward pass.
class Dropout final : public Layer {
 public:
  /// `p` is the drop probability in [0, 1); the RNG is owned (seeded
  /// explicitly so training runs stay reproducible).
  Dropout(double p, std::uint64_t seed);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "Dropout"; }

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }
  double drop_probability() const { return p_; }

 private:
  double p_;
  bool training_ = true;
  Rng rng_;
  Matrix mask_;  ///< cached keep-mask (already scaled) from forward
};

/// Learning-rate schedule interface: maps a step index to a multiplier of
/// the base learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Multiplier at `step` (0-based), in (0, 1].
  virtual double multiplier(std::size_t step) const = 0;
};

/// Constant multiplier 1 — the default/no-op schedule.
class ConstantLr final : public LrSchedule {
 public:
  double multiplier(std::size_t) const override { return 1.0; }
};

/// Step decay: lr *= factor every `interval` steps.
class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(std::size_t interval, double factor);
  double multiplier(std::size_t step) const override;

 private:
  std::size_t interval_;
  double factor_;
};

/// Cosine annealing from 1 to `floor` over `total_steps` (clamped after).
class CosineLr final : public LrSchedule {
 public:
  explicit CosineLr(std::size_t total_steps, double floor = 0.0);
  double multiplier(std::size_t step) const override;

 private:
  std::size_t total_steps_;
  double floor_;
};

/// Linear warmup over `warmup_steps`, then constant 1.
class WarmupLr final : public LrSchedule {
 public:
  explicit WarmupLr(std::size_t warmup_steps);
  double multiplier(std::size_t step) const override;

 private:
  std::size_t warmup_steps_;
};

/// Drives an optimizer's learning rate from a schedule. Call step() once
/// per optimizer step AFTER opt.step().
template <typename Opt>
class ScheduledOptimizer {
 public:
  ScheduledOptimizer(Opt& opt, std::unique_ptr<LrSchedule> schedule)
      : opt_(opt), base_lr_(opt.lr()), schedule_(std::move(schedule)) {}

  /// Applies the scheduled rate, runs the optimizer step, advances time.
  void step() {
    opt_.set_lr(base_lr_ * schedule_->multiplier(t_));
    opt_.step();
    ++t_;
  }

  std::size_t steps_taken() const { return t_; }
  double current_lr() const { return opt_.lr(); }

 private:
  Opt& opt_;
  double base_lr_;
  std::unique_ptr<LrSchedule> schedule_;
  std::size_t t_ = 0;
};

}  // namespace fedra
