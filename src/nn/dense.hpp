// Fully connected layer: y = x W + b, with W (in x out) and b (1 x out).
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fedra {

enum class Init {
  Xavier,  ///< uniform(-sqrt(6/(in+out)), +sqrt(6/(in+out))) — tanh/sigmoid
  He,      ///< gaussian(0, sqrt(2/in)) — ReLU family
  Zero,    ///< zeros (useful for output heads that should start neutral)
};

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
        Init init = Init::Xavier);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_in) override;

  std::vector<Matrix*> params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> grads() override { return {&grad_weight_, &grad_bias_}; }
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return weight_.rows(); }
  std::size_t out_features() const { return weight_.cols(); }

  const Matrix& weight() const { return weight_; }
  const Matrix& bias() const { return bias_; }
  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }

  // --- fusion hooks (nn/fused.hpp; driven by Sequential) -------------------
  // Forward split: GEMM only, bias folded into the activation pass by the
  // caller. `pre` = x W (NO bias); input pointer cached as usual.
  void forward_gemm_into(const Matrix& input, Matrix& pre);
  // Backward split for a caller-computed dLoss/dPre: accumulates dW and
  // writes dX. The bias gradient goes through bias_grad_scratch() +
  // accumulate_bias_grad() (filled by the fused dAct·colsum pass), keeping
  // the accumulate-into-scratch-then-add order of backward_into.
  void backward_gemms_into(const Matrix& grad_pre, Matrix& grad_in);
  Matrix& bias_grad_scratch() { return gb_scratch_; }
  void accumulate_bias_grad() { grad_bias_ += gb_scratch_; }

 private:
  Matrix weight_;
  Matrix bias_;
  Matrix grad_weight_;
  Matrix grad_bias_;
  // Workspace path caches a pointer to the (externally stable) input;
  // the legacy path copies into cached_input_ (capacity reused) and
  // points input_ref_ at it. Either way backward reads *input_ref_.
  Matrix cached_input_;
  const Matrix* input_ref_ = nullptr;
  // Per-minibatch gradients land here, then accumulate into grad_*_ with
  // a separate += so the summation order (and bits) match the legacy
  // temp-then-add path.
  Matrix gw_scratch_;
  Matrix gb_scratch_;
};

}  // namespace fedra
