// Deep Deterministic Policy Gradient (Lillicrap et al.; the DPG line of
// work the paper cites via [23]). An off-policy alternative to the PPO
// agent, used by the offpolicy ablation bench: deterministic actor
// mu(s) in (0,1)^A (sigmoid head), Q-critic over (s, a), target copies
// with Polyak soft updates, Gaussian exploration noise, uniform replay.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/prioritized_replay.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace fedra {

struct DdpgConfig {
  std::vector<std::size_t> actor_hidden = {64, 64};
  std::vector<std::size_t> critic_hidden = {64, 64};
  double gamma = 0.4;        ///< same near-greedy discount as the PPO agent
  double soft_tau = 0.01;    ///< Polyak coefficient for target updates
  double actor_lr = 1e-4;
  double critic_lr = 1e-3;
  double noise_std = 0.1;    ///< exploration noise on the action, in (0,1)
  std::size_t batch_size = 64;
  std::size_t replay_capacity = 20000;
  std::size_t warmup = 256;  ///< transitions before updates start
  double action_floor = 0.01;  ///< actions clamped to [floor, 1]
  /// Prioritized replay (Schaul et al.) instead of uniform sampling.
  bool prioritized = false;
  double per_alpha = 0.6;
  double per_beta = 0.4;
};

struct DdpgStats {
  double critic_loss = 0.0;
  double actor_objective = 0.0;  ///< mean Q(s, mu(s)) after the update
};

class DdpgAgent {
 public:
  DdpgAgent(std::size_t state_dim, std::size_t action_dim,
            const DdpgConfig& config, std::uint64_t seed);

  std::size_t state_dim() const { return state_dim_; }
  std::size_t action_dim() const { return action_dim_; }

  /// Deterministic action mu(s) in (action_floor, 1]^A. Runs through a
  /// persistent inference workspace: zero heap traffic at steady state,
  /// bit-identical to the legacy allocating path.
  std::vector<double> act(const std::vector<double>& state);

  /// mu(s) + Gaussian noise, clamped (training-time exploration).
  std::vector<double> act_noisy(const std::vector<double>& state, Rng& rng);

  void remember(OffPolicyTransition t);
  std::size_t replay_size() const;

  /// One gradient step on a sampled minibatch (no-op before warmup).
  DdpgStats update(Rng& rng);

  /// Q(s, a) under the online critic.
  double q_value(const std::vector<double>& state,
                 const std::vector<double>& action);

 private:
  Matrix concat(const Matrix& states, const Matrix& actions) const;
  void soft_update(Sequential& target, Sequential& online) const;
  /// Core update on a minibatch; `is_weights`/`out_td_errors` support the
  /// prioritized path (empty weights = uniform).
  DdpgStats update_on_batch(const OffPolicyBatch& batch,
                            const std::vector<double>& is_weights,
                            std::vector<double>* out_td_errors);

  std::size_t state_dim_;
  std::size_t action_dim_;
  DdpgConfig config_;
  Mlp actor_;
  Mlp critic_;
  Mlp target_actor_;
  Mlp target_critic_;
  Adam actor_opt_;
  Adam critic_opt_;
  ReplayBuffer replay_;                 ///< used when !config.prioritized
  PrioritizedReplayBuffer per_replay_;  ///< used when config.prioritized

  // Single-row inference buffers (act / q_value), separate from the
  // batch update path so interleaved calls never disturb cached state.
  Workspace actor_infer_ws_;
  Matrix actor_infer_in_;    ///< persistent 1xS input row
  Workspace critic_infer_ws_;
  Matrix critic_infer_in_;   ///< persistent 1x(S+A) concat row
};

}  // namespace fedra
