// Block-sharded minibatch backprop for the PPO/A2C update stage.
//
// The minibatch is split into fixed-size row blocks (kGradBlockRows rows
// per block, configured via PpoConfig::grad_block_rows). Each block runs a
// full forward+backward pass on its own REPLICA network (parameters copied
// from the master at the start of the pass), so blocks share no mutable
// state and can execute on any thread of a pool. The per-block gradients
// are then reduced into the master's gradient buffers in ascending block
// order on the calling thread.
//
// Determinism contract: block boundaries depend only on the batch size and
// the configured block rows — never on the pool — and the reduction order
// is fixed, so the accumulated gradient is BIT-IDENTICAL across pool sizes
// (including no pool at all, where blocks run serially on the calling
// thread). tests/test_parallel_backprop.cpp pins this across pools
// {1, 2, 8}. The blocked result is a different (but equally valid)
// summation grouping than the legacy whole-batch pass, which is why the
// feature is opt-in: grad_block_rows = 0 preserves the legacy bits.
//
// The entropy bonus of a state-INDEPENDENT Gaussian policy does not depend
// on the batch, so blocks run with entropy_coeff = 0 and the term is
// applied exactly once after the reduction. State-dependent-sigma policies
// are not supported here (their entropy is a batch mean that would couple
// blocks); agents fall back to the sequential path for them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "nn/mlp.hpp"
#include "rl/policy.hpp"
#include "tensor/matrix.hpp"

namespace fedra {

class ThreadPool;

class BlockGradEngine {
 public:
  /// Replica topology must match the master networks passed to the
  /// passes: actor replicas are built from (state_dim, action_dim,
  /// policy_config), critic replicas from (critic_sizes,
  /// critic_activation). Requires !policy_config.state_dependent_std.
  BlockGradEngine(std::size_t state_dim, std::size_t action_dim,
                  const PolicyConfig& policy_config,
                  const std::vector<std::size_t>& critic_sizes,
                  Activation critic_activation, std::size_t block_rows);
  ~BlockGradEngine();

  BlockGradEngine(const BlockGradEngine&) = delete;
  BlockGradEngine& operator=(const BlockGradEngine&) = delete;

  /// Blocks run on `pool` when set (the calling thread participates);
  /// nullptr runs them serially. The result is bitwise the same either
  /// way.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }
  std::size_t block_rows() const { return block_rows_; }

  /// Computes log pi(u_b|s_b) for every row into `logp_out`, evaluates
  /// `coeff_fn(b, logp_b)` per row (on the block's thread: it must be
  /// pure and read only shared-const data), and leaves the gradient of
  ///   sum_b coeff_b * log pi(u_b|s_b) - entropy_coeff * H
  /// in `master.grads()` (master.zero_grad() is called here).
  void actor_pass(GaussianPolicy& master, const Matrix& states,
                  const Matrix& actions_u,
                  const std::function<double(std::size_t, double)>& coeff_fn,
                  double entropy_coeff, std::vector<double>& logp_out);

  /// Computes v_b = V(s_b) for every row into `v_out`, evaluates
  /// `dloss_dv(b, v_b)` per row (same purity requirement), and leaves the
  /// gradient of the row-summed loss in `master.grads()`.
  void critic_pass(Mlp& master, const Matrix& states,
                   const std::function<double(std::size_t, double)>& dloss_dv,
                   std::vector<double>& v_out);

 private:
  struct Shard;

  void ensure_shards(std::size_t count);
  void for_each_block(std::size_t nblocks,
                      const std::function<void(std::size_t)>& body);

  std::size_t state_dim_;
  std::size_t action_dim_;
  PolicyConfig policy_config_;
  std::vector<std::size_t> critic_sizes_;
  Activation critic_activation_;
  std::size_t block_rows_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fedra
