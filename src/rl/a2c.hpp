// Advantage actor-critic WITHOUT the PPO clip — the ablation baseline for
// the paper's claim (Section IV-C) that PPO's bounded policy deviation is
// what makes the update stable. A2C makes exactly one pass over the buffer
// per update (reusing on-policy data more than once without a trust region
// is unsound), using the same GAE advantages and TD critic fit as PPO.
#pragma once

#include <memory>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/block_grads.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"
#include "util/rng.hpp"

namespace fedra {

class ThreadPool;

class A2cAgent {
 public:
  /// Shares PpoConfig for the common knobs; clip_epsilon and update_epochs
  /// are ignored (single unclipped pass).
  A2cAgent(std::size_t state_dim, std::size_t action_dim,
           const PolicyConfig& policy_config, const PpoConfig& config,
           std::uint64_t seed);

  PolicySample act(const std::vector<double>& state, Rng& rng);
  /// Deterministic mean action, via GaussianPolicy's persistent inference
  /// workspace (zero-alloc steady state, bit-identical to the legacy path).
  std::vector<double> mean_action(const std::vector<double>& state);
  double value(const std::vector<double>& state);

  UpdateStats update(const RolloutBuffer& buffer, Rng& rng);

  /// Attaches a thread pool for block-parallel backprop (effective with
  /// config.grad_block_rows > 0; see rl/block_grads.hpp). The update
  /// result is bit-identical with or without a pool.
  void set_pool(ThreadPool* pool);

  GaussianPolicy& policy() { return policy_; }

 private:
  PpoConfig config_;
  GaussianPolicy policy_;
  Mlp critic_;
  Adam actor_opt_;
  Adam critic_opt_;
  Workspace critic_infer_ws_;  ///< single-row V(s) inference buffers
  Matrix critic_infer_in_;     ///< persistent 1xS input row for value()
  std::vector<double> v_vals_;
  std::unique_ptr<BlockGradEngine> engine_;
};

}  // namespace fedra
