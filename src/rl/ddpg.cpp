#include "rl/ddpg.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fedra {

namespace {

std::vector<std::size_t> sizes_for(std::size_t in,
                                   const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

Mlp make_actor(std::size_t sdim, std::size_t adim, const DdpgConfig& cfg,
               std::uint64_t seed) {
  Rng rng(seed);
  return Mlp(sizes_for(sdim, cfg.actor_hidden, adim), Activation::Tanh, rng,
             Activation::Sigmoid);
}

Mlp make_critic(std::size_t sdim, std::size_t adim, const DdpgConfig& cfg,
                std::uint64_t seed) {
  Rng rng(seed);
  return Mlp(sizes_for(sdim + adim, cfg.critic_hidden, 1), Activation::Tanh,
             rng);
}

}  // namespace

DdpgAgent::DdpgAgent(std::size_t state_dim, std::size_t action_dim,
                     const DdpgConfig& config, std::uint64_t seed)
    : state_dim_(state_dim),
      action_dim_(action_dim),
      config_(config),
      actor_(make_actor(state_dim, action_dim, config, seed)),
      critic_(make_critic(state_dim, action_dim, config, seed ^ 0xbeefULL)),
      target_actor_(make_actor(state_dim, action_dim, config, seed)),
      target_critic_(
          make_critic(state_dim, action_dim, config, seed ^ 0xbeefULL)),
      actor_opt_(actor_, config.actor_lr),
      critic_opt_(critic_, config.critic_lr),
      replay_(config.replay_capacity),
      per_replay_(config.replay_capacity, config.per_alpha,
                  config.per_beta) {
  FEDRA_EXPECTS(state_dim > 0 && action_dim > 0);
  FEDRA_EXPECTS(config.gamma >= 0.0 && config.gamma < 1.0);
  FEDRA_EXPECTS(config.soft_tau > 0.0 && config.soft_tau <= 1.0);
  FEDRA_EXPECTS(config.action_floor >= 0.0 && config.action_floor < 1.0);
  // Same seeds above make targets start identical to the online networks.
}

std::vector<double> DdpgAgent::act(const std::vector<double>& state) {
  FEDRA_EXPECTS(state.size() == state_dim_);
  actor_infer_in_.resize_reuse(1, state_dim_);
  for (std::size_t j = 0; j < state_dim_; ++j) {
    actor_infer_in_(0, j) = state[j];
  }
  const Matrix& a = actor_.forward_cached(actor_infer_in_, actor_infer_ws_);
  std::vector<double> action(action_dim_);
  for (std::size_t j = 0; j < action_dim_; ++j) {
    action[j] = std::clamp(a(0, j), config_.action_floor, 1.0);
  }
  return action;
}

std::vector<double> DdpgAgent::act_noisy(const std::vector<double>& state,
                                         Rng& rng) {
  auto action = act(state);
  for (auto& a : action) {
    a = std::clamp(a + rng.gaussian(0.0, config_.noise_std),
                   config_.action_floor, 1.0);
  }
  return action;
}

Matrix DdpgAgent::concat(const Matrix& states, const Matrix& actions) const {
  FEDRA_EXPECTS(states.rows() == actions.rows());
  Matrix joined(states.rows(), states.cols() + actions.cols());
  for (std::size_t b = 0; b < states.rows(); ++b) {
    auto dst = joined.row(b);
    auto s = states.row(b);
    auto a = actions.row(b);
    std::copy(s.begin(), s.end(), dst.begin());
    std::copy(a.begin(), a.end(),
              dst.begin() + static_cast<std::ptrdiff_t>(states.cols()));
  }
  return joined;
}

void DdpgAgent::soft_update(Sequential& target, Sequential& online) const {
  auto tp = target.params();
  auto op = online.params();
  FEDRA_EXPECTS(tp.size() == op.size());
  const double tau = config_.soft_tau;
  for (std::size_t i = 0; i < tp.size(); ++i) {
    Matrix& t = *tp[i];
    const Matrix& o = *op[i];
    for (std::size_t j = 0; j < t.size(); ++j) {
      t[j] = (1.0 - tau) * t[j] + tau * o[j];
    }
  }
}

void DdpgAgent::remember(OffPolicyTransition t) {
  if (config_.prioritized) {
    per_replay_.push(std::move(t));
  } else {
    replay_.push(std::move(t));
  }
}

std::size_t DdpgAgent::replay_size() const {
  return config_.prioritized ? per_replay_.size() : replay_.size();
}

DdpgStats DdpgAgent::update(Rng& rng) {
  DdpgStats stats;
  if (replay_size() < std::max(config_.warmup, config_.batch_size)) {
    return stats;
  }
  if (!config_.prioritized) {
    const auto batch = replay_.sample(config_.batch_size, rng);
    return update_on_batch(batch, {}, nullptr);
  }
  auto pri = per_replay_.sample(config_.batch_size, rng);
  std::vector<double> td_errors;
  stats = update_on_batch(pri.batch, pri.weights, &td_errors);
  per_replay_.update_priorities(pri.indices, td_errors);
  return stats;
}

DdpgStats DdpgAgent::update_on_batch(const OffPolicyBatch& batch,
                                     const std::vector<double>& is_weights,
                                     std::vector<double>* out_td_errors) {
  DdpgStats stats;
  const std::size_t n = batch.states.rows();
  const double inv_n = 1.0 / static_cast<double>(n);
  FEDRA_EXPECTS(is_weights.empty() || is_weights.size() == n);

  // ---- Critic: fit Q(s,a) to r + gamma Q'(s', mu'(s')) ----
  Matrix next_actions = target_actor_.forward(batch.next_states);
  for (std::size_t i = 0; i < next_actions.size(); ++i) {
    next_actions[i] =
        std::clamp(next_actions[i], config_.action_floor, 1.0);
  }
  Matrix next_q = target_critic_.forward(concat(batch.next_states,
                                                next_actions));
  critic_.zero_grad();
  Matrix q = critic_.forward(concat(batch.states, batch.actions));
  Matrix grad_q(n, 1);
  double critic_loss = 0.0;
  if (out_td_errors) out_td_errors->resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    const double target = batch.rewards[b] + config_.gamma * next_q(b, 0);
    const double err = q(b, 0) - target;
    const double w = is_weights.empty() ? 1.0 : is_weights[b];
    critic_loss += w * err * err * inv_n;
    grad_q(b, 0) = 2.0 * w * err * inv_n;
    if (out_td_errors) (*out_td_errors)[b] = err;
  }
  critic_.backward(grad_q);
  critic_opt_.step();
  stats.critic_loss = critic_loss;

  // ---- Actor: ascend Q(s, mu(s)) ----
  // Forward the actor, then the critic on (s, mu(s)); the gradient of
  // -mean(Q) w.r.t. the action slice of the critic input chains into the
  // actor's backward pass. Critic parameter grads accumulated during this
  // pass are discarded (zeroed before its next update).
  actor_.zero_grad();
  Matrix mu = actor_.forward(batch.states);
  critic_.zero_grad();
  Matrix q_mu = critic_.forward(concat(batch.states, mu));
  double actor_obj = 0.0;
  for (std::size_t b = 0; b < n; ++b) actor_obj += q_mu(b, 0) * inv_n;
  Matrix grad_out(n, 1, -inv_n);  // d(-mean Q)/dQ
  Matrix grad_input = critic_.backward(grad_out);
  // Slice the action columns of dL/d(input).
  Matrix grad_action(n, action_dim_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t j = 0; j < action_dim_; ++j) {
      grad_action(b, j) = grad_input(b, state_dim_ + j);
    }
  }
  actor_.backward(grad_action);
  actor_opt_.step();
  critic_.zero_grad();  // drop the critic grads from the actor pass
  stats.actor_objective = actor_obj;

  // ---- Target networks: Polyak averaging ----
  soft_update(target_actor_, actor_);
  soft_update(target_critic_, critic_);
  return stats;
}

double DdpgAgent::q_value(const std::vector<double>& state,
                          const std::vector<double>& action) {
  FEDRA_EXPECTS(state.size() == state_dim_);
  FEDRA_EXPECTS(action.size() == action_dim_);
  critic_infer_in_.resize_reuse(1, state_dim_ + action_dim_);
  for (std::size_t j = 0; j < state_dim_; ++j) {
    critic_infer_in_(0, j) = state[j];
  }
  for (std::size_t j = 0; j < action_dim_; ++j) {
    critic_infer_in_(0, state_dim_ + j) = action[j];
  }
  return critic_.forward_cached(critic_infer_in_, critic_infer_ws_)(0, 0);
}

}  // namespace fedra
