// Uniform-sampling ring replay buffer for off-policy learners (DDPG).
// Unlike the on-policy RolloutBuffer (Algorithm 1's D, filled and
// cleared), this keeps a sliding window of the most recent transitions
// and samples minibatches with replacement.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fedra {

struct OffPolicyTransition {
  std::vector<double> state;
  std::vector<double> action;  ///< post-squash action in (0, 1)^A
  double reward = 0.0;
  std::vector<double> next_state;
};

/// A minibatch in matrix form, ready for network forward passes.
struct OffPolicyBatch {
  Matrix states;
  Matrix actions;
  std::vector<double> rewards;
  Matrix next_states;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return data_.size(); }

  void push(OffPolicyTransition t);

  /// Samples `batch` transitions uniformly with replacement. Requires a
  /// non-empty buffer.
  OffPolicyBatch sample(std::size_t batch, Rng& rng) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring write position once full
  std::vector<OffPolicyTransition> data_;
};

}  // namespace fedra
