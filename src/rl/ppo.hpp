// Proximal Policy Optimization (clipped surrogate) with an actor-critic
// pair, implementing the update stage of Algorithm 1:
//   - the SAMPLING policy theta_a^old fills the buffer (lines 11-16);
//   - M epochs of minibatch PPO update theta_a (line 19);
//   - the critic V(.; theta_v) is fitted by minimizing the one-step TD
//     residual [r + gamma V(s') - V(s)]^2 (line 20, semi-gradient: the
//     bootstrap target is re-evaluated under the current critic each
//     epoch but not differentiated);
//   - theta_a^old <- theta_a and the buffer is cleared (lines 22-23).
#pragma once

#include <cstddef>
#include <memory>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/block_grads.hpp"
#include "rl/policy.hpp"
#include "rl/rollout.hpp"
#include "util/rng.hpp"

namespace fedra {

class ThreadPool;

struct PpoConfig {
  double gamma = 0.95;
  double gae_lambda = 0.95;
  double clip_epsilon = 0.2;
  std::size_t update_epochs = 10;  ///< M of Algorithm 1
  std::size_t minibatch_size = 64;
  double actor_lr = 3e-4;
  double critic_lr = 1e-3;
  double entropy_coef = 1e-3;
  double max_grad_norm = 0.5;
  std::vector<std::size_t> critic_hidden = {64, 64};
  Activation critic_activation = Activation::Tanh;
  /// Huber (smooth-L1) critic loss instead of squared TD error: linear
  /// tails cap the gradient of outlier targets (long straggler
  /// iterations produce heavy-tailed rewards). 0 disables.
  double critic_huber_delta = 0.0;
  /// Rows per gradient block for block-sharded minibatch backprop (see
  /// rl/block_grads.hpp). 0 (default) keeps the legacy whole-batch
  /// sequential pass, bit for bit. When > 0 the update gradient is
  /// reduced block-by-block in a fixed order, so the result is
  /// bit-identical across thread pools of any size (attach one with
  /// PpoAgent::set_pool) but is a different summation grouping than the
  /// legacy pass. Ignored (legacy path) for state-dependent-sigma
  /// policies.
  std::size_t grad_block_rows = 0;
};

struct UpdateStats {
  double policy_loss = 0.0;   ///< mean clipped-surrogate loss (minimized)
  double value_loss = 0.0;    ///< mean TD residual squared
  double entropy = 0.0;       ///< policy entropy after the update
  double approx_kl = 0.0;     ///< mean(logp_old - logp_new) after update
  double clip_fraction = 0.0; ///< fraction of samples with clipped ratio
  /// Combined scalar reported as the "training loss" of the paper's
  /// Fig. 6(a): policy_loss + value_loss - entropy_coef * entropy.
  double total_loss = 0.0;
};

class PpoAgent {
 public:
  PpoAgent(std::size_t state_dim, std::size_t action_dim,
           const PolicyConfig& policy_config, const PpoConfig& config,
           std::uint64_t seed);

  const PpoConfig& config() const { return config_; }

  /// Samples from theta_a^old (the behavior policy, Algorithm 1 line 12).
  PolicySample act(const std::vector<double>& state, Rng& rng);

  /// Deterministic mean action from theta_a (online reasoning).
  std::vector<double> mean_action(const std::vector<double>& state);

  /// Batched deterministic mean actions (fedra::serve): row b is
  /// bit-identical to mean_action(states.row(b)). Not thread-safe.
  void mean_action_batch(const Matrix& states, Matrix& actions);

  /// V(s; theta_v) for rollout bookkeeping.
  double value(const std::vector<double>& state);

  /// Runs M PPO epochs + critic fits over the (full) buffer, then syncs
  /// theta_a^old <- theta_a. The caller clears the buffer afterwards.
  UpdateStats update(const RolloutBuffer& buffer, Rng& rng);

  /// Attaches a thread pool for block-parallel minibatch backprop (only
  /// effective with config.grad_block_rows > 0). nullptr detaches; the
  /// update result is bit-identical with or without a pool.
  void set_pool(ThreadPool* pool);

  GaussianPolicy& policy() { return policy_; }
  GaussianPolicy& behavior_policy() { return policy_old_; }
  Mlp& critic() { return critic_; }

  // Optimizer state access for checkpointing (fedra::ckpt): a bit-exact
  // resume must carry the Adam moments and step counters across.
  Adam& actor_optimizer() { return actor_opt_; }
  Adam& critic_optimizer() { return critic_opt_; }

  void save(const std::string& prefix);
  void load(const std::string& prefix);

 private:
  PpoConfig config_;
  GaussianPolicy policy_;      ///< theta_a
  GaussianPolicy policy_old_;  ///< theta_a^old
  Mlp critic_;                 ///< theta_v
  Adam actor_opt_;
  Adam critic_opt_;

  // Update-loop scratch, reused across minibatches and updates so the
  // steady-state iteration performs no tensor heap allocation (the
  // tensor.alloc_bytes counter tracks the residual).
  Workspace critic_ws_;
  Workspace critic_infer_ws_;  ///< single-row V(s) buffers, kept separate
                               ///< so value() between update passes never
                               ///< touches the minibatch workspace
  Matrix critic_infer_in_;     ///< persistent 1xS input row for value()
  Matrix states_;
  Matrix next_states_;
  Matrix actions_u_;
  Matrix mb_states_;
  Matrix mb_actions_;
  Matrix grad_v_;
  std::vector<std::size_t> idx_;
  std::vector<double> td_target_;
  std::vector<double> coeff_;
  std::vector<double> logp_new_;
  std::vector<double> v_vals_;  ///< blocked critic pass: per-row V(s)

  /// Non-null iff config.grad_block_rows > 0 and the policy's sigma is
  /// state-independent (the blocked path's precondition).
  std::unique_ptr<BlockGradEngine> engine_;
};

}  // namespace fedra
