#include "rl/dqn.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/contracts.hpp"

namespace fedra {

namespace {
std::vector<std::size_t> net_sizes(std::size_t in,
                                   const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

Mlp make_net(std::size_t sdim, std::size_t out, const DqnConfig& cfg,
             std::uint64_t seed) {
  Rng rng(seed);
  return Mlp(net_sizes(sdim, cfg.hidden, out), Activation::ReLU, rng);
}
}  // namespace

FactoredDqnAgent::FactoredDqnAgent(std::size_t state_dim,
                                   std::size_t num_devices,
                                   const DqnConfig& config,
                                   std::uint64_t seed)
    : state_dim_(state_dim),
      devices_(num_devices),
      config_(config),
      online_(make_net(state_dim, num_devices * config.levels, config, seed)),
      target_(make_net(state_dim, num_devices * config.levels, config, seed)),
      opt_(online_, config.lr),
      replay_(config.replay_capacity) {
  FEDRA_EXPECTS(state_dim > 0 && num_devices > 0);
  FEDRA_EXPECTS(config.levels >= 2);
  FEDRA_EXPECTS(config.gamma >= 0.0 && config.gamma < 1.0);
  FEDRA_EXPECTS(config.epsilon_start >= config.epsilon_end);
  FEDRA_EXPECTS(config.epsilon_decay_steps > 0);
}

double FactoredDqnAgent::fraction_of(std::size_t level) const {
  FEDRA_EXPECTS(level < config_.levels);
  return static_cast<double>(level + 1) /
         static_cast<double>(config_.levels);
}

std::size_t FactoredDqnAgent::level_of(double fraction) const {
  const auto level = static_cast<std::size_t>(std::llround(
      fraction * static_cast<double>(config_.levels) - 1.0));
  FEDRA_EXPECTS(level < config_.levels);
  return level;
}

Matrix FactoredDqnAgent::q_values(const std::vector<double>& state) {
  FEDRA_EXPECTS(state.size() == state_dim_);
  Matrix s = Matrix::row_vector(state);
  Matrix out = online_.forward(s);
  out.reshape(devices_, config_.levels);
  return out;
}

std::vector<double> FactoredDqnAgent::act(const std::vector<double>& state) {
  Matrix q = q_values(state);
  std::vector<double> fractions(devices_);
  for (std::size_t i = 0; i < devices_; ++i) {
    fractions[i] = fraction_of(argmax_row(q, i));
  }
  return fractions;
}

double FactoredDqnAgent::current_epsilon() const {
  const double progress =
      std::min(1.0, static_cast<double>(env_steps_) /
                        static_cast<double>(config_.epsilon_decay_steps));
  return config_.epsilon_start +
         progress * (config_.epsilon_end - config_.epsilon_start);
}

std::vector<double> FactoredDqnAgent::act_epsilon_greedy(
    const std::vector<double>& state, Rng& rng) {
  const double eps = current_epsilon();
  ++env_steps_;
  Matrix q = q_values(state);
  std::vector<double> fractions(devices_);
  for (std::size_t i = 0; i < devices_; ++i) {
    if (rng.bernoulli(eps)) {
      fractions[i] = fraction_of(static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(config_.levels) - 1)));
    } else {
      fractions[i] = fraction_of(argmax_row(q, i));
    }
  }
  return fractions;
}

void FactoredDqnAgent::remember(OffPolicyTransition t) {
  replay_.push(std::move(t));
}

DqnStats FactoredDqnAgent::update(Rng& rng) {
  DqnStats stats;
  stats.epsilon = current_epsilon();
  if (replay_.size() < std::max(config_.warmup, config_.batch_size)) {
    return stats;
  }
  const auto batch = replay_.sample(config_.batch_size, rng);
  const std::size_t n = batch.states.rows();
  const std::size_t L = config_.levels;
  const double inv = 1.0 / static_cast<double>(n * devices_);

  // Per-device bootstrapped targets from the target network.
  Matrix next_q = target_.forward(batch.next_states);  // (n x devices*L)
  online_.zero_grad();
  Matrix q = online_.forward(batch.states);
  Matrix grad(n, devices_ * L);
  double loss = 0.0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < devices_; ++i) {
      double best_next = -1e300;
      for (std::size_t l = 0; l < L; ++l) {
        best_next = std::max(best_next, next_q(b, i * L + l));
      }
      const double target =
          batch.rewards[b] + config_.gamma * best_next;
      const std::size_t a = level_of(batch.actions(b, i));
      const double err = q(b, i * L + a) - target;
      loss += err * err * inv;
      grad(b, i * L + a) = 2.0 * err * inv;
    }
  }
  online_.backward(grad);
  opt_.step();
  stats.td_loss = loss;

  ++updates_;
  if (updates_ % config_.target_sync_every == 0) {
    target_.copy_params_from(online_);
  }
  return stats;
}

}  // namespace fedra
