#include "rl/prioritized_replay.hpp"

#include <algorithm>
#include <cmath>

namespace fedra {

SumTree::SumTree(std::size_t capacity) : capacity_(capacity) {
  FEDRA_EXPECTS(capacity > 0);
  base_ = 1;
  while (base_ < capacity) base_ *= 2;
  nodes_.assign(2 * base_, 0.0);
}

double SumTree::get(std::size_t leaf) const {
  FEDRA_EXPECTS(leaf < capacity_);
  return nodes_[base_ + leaf];
}

void SumTree::set(std::size_t leaf, double weight) {
  FEDRA_EXPECTS(leaf < capacity_);
  FEDRA_EXPECTS(weight >= 0.0);
  std::size_t idx = base_ + leaf;
  nodes_[idx] = weight;
  while (idx > 1) {
    idx /= 2;
    nodes_[idx] = nodes_[2 * idx] + nodes_[2 * idx + 1];
  }
}

std::size_t SumTree::find_prefix(double u) const {
  FEDRA_EXPECTS(u >= 0.0 && u < total());
  std::size_t idx = 1;
  while (idx < base_) {
    const double left = nodes_[2 * idx];
    if (u < left) {
      idx = 2 * idx;
    } else {
      u -= left;
      idx = 2 * idx + 1;
    }
  }
  // Floating-point drift can land on a zero-weight leaf; walk left to the
  // nearest positive one.
  std::size_t leaf = idx - base_;
  while (leaf > 0 && nodes_[base_ + leaf] == 0.0) --leaf;
  return std::min(leaf, capacity_ - 1);
}

PrioritizedReplayBuffer::PrioritizedReplayBuffer(std::size_t capacity,
                                                 double alpha, double beta)
    : capacity_(capacity), alpha_(alpha), beta_(beta), tree_(capacity) {
  FEDRA_EXPECTS(capacity > 0);
  FEDRA_EXPECTS(alpha >= 0.0 && alpha <= 1.0);
  FEDRA_EXPECTS(beta >= 0.0 && beta <= 1.0);
  data_.reserve(capacity);
}

void PrioritizedReplayBuffer::set_beta(double beta) {
  FEDRA_EXPECTS(beta >= 0.0 && beta <= 1.0);
  beta_ = beta;
}

void PrioritizedReplayBuffer::push(OffPolicyTransition t) {
  FEDRA_EXPECTS(!t.state.empty());
  FEDRA_EXPECTS(t.next_state.size() == t.state.size());
  std::size_t slot;
  if (data_.size() < capacity_) {
    slot = data_.size();
    data_.push_back(std::move(t));
  } else {
    slot = next_;
    data_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
  tree_.set(slot, std::pow(max_priority_, alpha_));
}

PrioritizedBatch PrioritizedReplayBuffer::sample(std::size_t batch,
                                                 Rng& rng) const {
  FEDRA_EXPECTS(!data_.empty());
  FEDRA_EXPECTS(batch > 0);
  FEDRA_EXPECTS(tree_.total() > 0.0);
  const std::size_t sdim = data_.front().state.size();
  const std::size_t adim = data_.front().action.size();

  PrioritizedBatch out;
  out.batch.states = Matrix(batch, sdim);
  out.batch.actions = Matrix(batch, adim);
  out.batch.next_states = Matrix(batch, sdim);
  out.batch.rewards.resize(batch);
  out.indices.resize(batch);
  out.weights.resize(batch);

  const double total = tree_.total();
  const double n = static_cast<double>(data_.size());
  double max_weight = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    // Stratified sampling: one draw per equal-mass segment.
    const double seg = total / static_cast<double>(batch);
    const double u = (static_cast<double>(b) + rng.uniform()) * seg;
    const std::size_t idx = tree_.find_prefix(std::min(u, total * (1 - 1e-12)));
    out.indices[b] = idx;
    const double p = tree_.get(idx) / total;
    out.weights[b] = std::pow(n * std::max(p, 1e-12), -beta_);
    max_weight = std::max(max_weight, out.weights[b]);

    const auto& t = data_[idx];
    for (std::size_t j = 0; j < sdim; ++j) {
      out.batch.states(b, j) = t.state[j];
      out.batch.next_states(b, j) = t.next_state[j];
    }
    for (std::size_t j = 0; j < adim; ++j) {
      out.batch.actions(b, j) = t.action[j];
    }
    out.batch.rewards[b] = t.reward;
  }
  // Normalize so the largest weight is 1 (standard stabilization).
  for (auto& w : out.weights) w /= max_weight;
  return out;
}

void PrioritizedReplayBuffer::update_priorities(
    const std::vector<std::size_t>& indices,
    const std::vector<double>& td_errors) {
  FEDRA_EXPECTS(indices.size() == td_errors.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FEDRA_EXPECTS(indices[i] < data_.size());
    const double priority = std::abs(td_errors[i]) + kEps;
    max_priority_ = std::max(max_priority_, priority);
    tree_.set(indices[i], std::pow(priority, alpha_));
  }
}

}  // namespace fedra
