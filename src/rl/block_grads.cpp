#include "rl/block_grads.hpp"

#include <algorithm>

#include "nn/workspace.hpp"
#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace fedra {

// One replica per block. Replicas persist across passes (grow-only), so a
// steady-state update performs no tensor heap allocation beyond the first
// minibatch of each distinct shape. The construction seed is irrelevant:
// parameters are overwritten by copy_params_from at the start of every
// pass.
struct BlockGradEngine::Shard {
  GaussianPolicy actor;
  Mlp critic;
  Workspace actor_ws_unused;  // GaussianPolicy carries its own workspaces
  Workspace critic_ws;
  Matrix states;
  Matrix actions;
  Matrix grad_v;
  std::vector<double> logp;
  std::vector<double> coeff;

  Shard(std::size_t state_dim, std::size_t action_dim,
        const PolicyConfig& policy_config,
        const std::vector<std::size_t>& critic_sizes,
        Activation critic_activation, std::uint64_t seed)
      : actor([&] {
          Rng rng(seed);
          return GaussianPolicy(state_dim, action_dim, policy_config, rng);
        }()),
        critic([&] {
          Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
          return Mlp(critic_sizes, critic_activation, rng);
        }()) {}
};

BlockGradEngine::BlockGradEngine(std::size_t state_dim, std::size_t action_dim,
                                 const PolicyConfig& policy_config,
                                 const std::vector<std::size_t>& critic_sizes,
                                 Activation critic_activation,
                                 std::size_t block_rows)
    : state_dim_(state_dim),
      action_dim_(action_dim),
      policy_config_(policy_config),
      critic_sizes_(critic_sizes),
      critic_activation_(critic_activation),
      block_rows_(block_rows) {
  FEDRA_EXPECTS(block_rows_ > 0);
  FEDRA_EXPECTS(!policy_config_.state_dependent_std);
  FEDRA_EXPECTS(critic_sizes_.size() >= 2);
}

BlockGradEngine::~BlockGradEngine() = default;

void BlockGradEngine::ensure_shards(std::size_t count) {
  while (shards_.size() < count) {
    shards_.push_back(std::make_unique<Shard>(
        state_dim_, action_dim_, policy_config_, critic_sizes_,
        critic_activation_,
        0x9e3779b97f4a7c15ULL + 0x100000001b3ULL * shards_.size()));
  }
}

void BlockGradEngine::for_each_block(
    std::size_t nblocks, const std::function<void(std::size_t)>& body) {
  if (pool_ != nullptr && nblocks > 1) {
    pool_->parallel_for(0, nblocks, body);
  } else {
    for (std::size_t k = 0; k < nblocks; ++k) body(k);
  }
}

namespace {

void gather_block_rows(const Matrix& src, std::size_t r0, std::size_t rows,
                       Matrix& out) {
  out.resize_reuse(rows, src.cols());
  for (std::size_t r = 0; r < rows; ++r) {
    auto dst_row = out.row(r);
    auto src_row = src.row(r0 + r);
    std::copy(src_row.begin(), src_row.end(), dst_row.begin());
  }
}

// dst[i] += src[i] for aligned parameter lists, elementwise ascending —
// called once per block in ascending block order, which fixes the
// summation grouping independently of how blocks were scheduled.
void reduce_grads(const std::vector<Matrix*>& dst,
                  const std::vector<Matrix*>& src) {
  FEDRA_EXPECTS(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    *dst[i] += *src[i];
  }
}

}  // namespace

void BlockGradEngine::actor_pass(
    GaussianPolicy& master, const Matrix& states, const Matrix& actions_u,
    const std::function<double(std::size_t, double)>& coeff_fn,
    double entropy_coeff, std::vector<double>& logp_out) {
  const std::size_t batch = states.rows();
  FEDRA_EXPECTS(batch > 0);
  FEDRA_EXPECTS(actions_u.rows() == batch);
  const std::size_t nblocks = (batch + block_rows_ - 1) / block_rows_;
  ensure_shards(nblocks);
  logp_out.resize(batch);

  for_each_block(nblocks, [&](std::size_t k) {
    Shard& sh = *shards_[k];
    const std::size_t r0 = k * block_rows_;
    const std::size_t rows = std::min(batch, r0 + block_rows_) - r0;
    gather_block_rows(states, r0, rows, sh.states);
    gather_block_rows(actions_u, r0, rows, sh.actions);
    sh.actor.copy_params_from(master);
    sh.actor.forward_log_probs(sh.states, sh.actions, sh.logp);
    sh.coeff.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      logp_out[r0 + r] = sh.logp[r];
      sh.coeff[r] = coeff_fn(r0 + r, sh.logp[r]);
    }
    sh.actor.zero_grad();
    // Entropy handled once at the reduction: H is state-independent here.
    sh.actor.backward_log_probs(sh.states, sh.actions, sh.coeff, 0.0);
  });

  master.zero_grad();
  auto dst = master.grads();
  for (std::size_t k = 0; k < nblocks; ++k) {
    reduce_grads(dst, shards_[k]->actor.grads());
  }
  if (entropy_coeff != 0.0) {
    // Matches the sequential path's grad_log_std[j] -= entropy_coeff.
    master.accumulate_entropy_grad(-entropy_coeff);
  }
}

void BlockGradEngine::critic_pass(
    Mlp& master, const Matrix& states,
    const std::function<double(std::size_t, double)>& dloss_dv,
    std::vector<double>& v_out) {
  const std::size_t batch = states.rows();
  FEDRA_EXPECTS(batch > 0);
  const std::size_t nblocks = (batch + block_rows_ - 1) / block_rows_;
  ensure_shards(nblocks);
  v_out.resize(batch);

  for_each_block(nblocks, [&](std::size_t k) {
    Shard& sh = *shards_[k];
    const std::size_t r0 = k * block_rows_;
    const std::size_t rows = std::min(batch, r0 + block_rows_) - r0;
    gather_block_rows(states, r0, rows, sh.states);
    sh.critic.copy_params_from(master);
    const Matrix& v = sh.critic.forward_cached(sh.states, sh.critic_ws);
    sh.grad_v.resize_reuse(rows, 1);
    for (std::size_t r = 0; r < rows; ++r) {
      v_out[r0 + r] = v(r, 0);
      sh.grad_v(r, 0) = dloss_dv(r0 + r, v(r, 0));
    }
    sh.critic.zero_grad();
    sh.critic.backward_cached(sh.grad_v, sh.critic_ws);
  });

  master.zero_grad();
  auto dst = master.grads();
  for (std::size_t k = 0; k < nblocks; ++k) {
    reduce_grads(dst, shards_[k]->critic.grads());
  }
}

}  // namespace fedra
