#include "rl/policy.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/serialize.hpp"
#include "util/contracts.hpp"

namespace fedra {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

double sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

std::vector<std::size_t> mlp_sizes(std::size_t in,
                                   const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

}  // namespace

GaussianPolicy::GaussianPolicy(std::size_t state_dim, std::size_t action_dim,
                               const PolicyConfig& config, Rng& rng)
    : state_dim_(state_dim),
      action_dim_(action_dim),
      config_(config),
      mean_net_(mlp_sizes(state_dim, config.hidden,
                          config.state_dependent_std ? 2 * action_dim
                                                     : action_dim),
                config.activation, rng),
      log_std_(1, action_dim, config.init_log_std),
      grad_log_std_(1, action_dim) {
  FEDRA_EXPECTS(state_dim > 0 && action_dim > 0);
  FEDRA_EXPECTS(config.min_log_std <= config.init_log_std &&
                config.init_log_std <= config.max_log_std);
  if (config_.state_dependent_std) {
    // Bias the log-std head so the initial policy explores at the
    // configured width (raw head starts near zero; shift it).
    auto params = mean_net_.params();
    Matrix& out_bias = *params.back();  // last Dense's bias (1 x 2A)
    FEDRA_EXPECTS(out_bias.rows() == 1 &&
                  out_bias.cols() == 2 * action_dim);
    for (std::size_t j = 0; j < action_dim; ++j) {
      out_bias[action_dim + j] = config.init_log_std;
    }
  }
}

double GaussianPolicy::log_sigma_at(const Matrix& raw, std::size_t b,
                                    std::size_t j) const {
  if (!config_.state_dependent_std) return log_std_[j];
  return std::clamp(raw(b, action_dim_ + j), config_.min_log_std,
                    config_.max_log_std);
}

bool GaussianPolicy::log_sigma_in_range(const Matrix& raw, std::size_t b,
                                        std::size_t j) const {
  if (!config_.state_dependent_std) return true;
  const double v = raw(b, action_dim_ + j);
  return v > config_.min_log_std && v < config_.max_log_std;
}

PolicySample GaussianPolicy::act(const std::vector<double>& state, Rng& rng) {
  FEDRA_EXPECTS(state.size() == state_dim_);
  Matrix s = Matrix::row_vector(state);
  Matrix raw = forward_raw(s);
  PolicySample sample;
  sample.action.resize(action_dim_);
  sample.action_u.resize(action_dim_);
  double logp = 0.0;
  for (std::size_t j = 0; j < action_dim_; ++j) {
    const double ls = log_sigma_at(raw, 0, j);
    const double sd = std::exp(ls);
    const double u = raw(0, j) + sd * rng.gaussian();
    const double z = (u - raw(0, j)) / sd;
    logp += -0.5 * z * z - ls - 0.5 * kLog2Pi;
    sample.action_u[j] = u;
    sample.action[j] = sigmoid(u);
  }
  sample.log_prob = logp;
  return sample;
}

std::vector<double> GaussianPolicy::mean_action(
    const std::vector<double>& state) {
  FEDRA_EXPECTS(state.size() == state_dim_);
  infer_in_.resize_reuse(1, state_dim_);
  for (std::size_t j = 0; j < state_dim_; ++j) infer_in_(0, j) = state[j];
  const Matrix& raw = mean_net_.forward_cached(infer_in_, infer_ws_);
  std::vector<double> action(action_dim_);
  for (std::size_t j = 0; j < action_dim_; ++j) {
    action[j] = sigmoid(raw(0, j));
  }
  return action;
}

void GaussianPolicy::mean_action_batch(const Matrix& states, Matrix& actions) {
  FEDRA_EXPECTS(states.cols() == state_dim_);
  const Matrix& raw = mean_net_.forward_cached(states, batch_infer_ws_);
  actions.resize_reuse(states.rows(), action_dim_);
  for (std::size_t b = 0; b < states.rows(); ++b) {
    for (std::size_t j = 0; j < action_dim_; ++j) {
      actions(b, j) = sigmoid(raw(b, j));
    }
  }
}

std::vector<double> GaussianPolicy::log_probs(const Matrix& states,
                                              const Matrix& actions_u) {
  return forward_log_probs(states, actions_u);
}

std::vector<double> GaussianPolicy::forward_log_probs(
    const Matrix& states, const Matrix& actions_u) {
  std::vector<double> logps;
  forward_log_probs(states, actions_u, logps);
  return logps;
}

void GaussianPolicy::forward_log_probs(const Matrix& states,
                                       const Matrix& actions_u,
                                       std::vector<double>& out) {
  FEDRA_EXPECTS(states.cols() == state_dim_);
  FEDRA_EXPECTS(actions_u.cols() == action_dim_);
  FEDRA_EXPECTS(states.rows() == actions_u.rows());
  const Matrix& raw = mean_net_.forward_cached(states, ws_);
  cached_out_ = &raw;
  out.resize(states.rows());
  double entropy_acc = 0.0;
  for (std::size_t b = 0; b < states.rows(); ++b) {
    double logp = 0.0;
    for (std::size_t j = 0; j < action_dim_; ++j) {
      const double ls = log_sigma_at(raw, b, j);
      const double sd = std::exp(ls);
      const double z = (actions_u(b, j) - raw(b, j)) / sd;
      logp += -0.5 * z * z - ls - 0.5 * kLog2Pi;
      entropy_acc += ls + 0.5 * (kLog2Pi + 1.0);
    }
    out[b] = logp;
  }
  last_entropy_ = states.rows() > 0
                      ? entropy_acc / static_cast<double>(states.rows())
                      : 0.0;
}

void GaussianPolicy::backward_log_probs(const Matrix& states,
                                        const Matrix& actions_u,
                                        const std::vector<double>& coeff,
                                        double entropy_coeff) {
  FEDRA_EXPECTS(states.rows() == coeff.size());
  FEDRA_EXPECTS(cached_out_ != nullptr);
  const Matrix& raw = *cached_out_;
  FEDRA_EXPECTS(raw.rows() == states.rows());
  const std::size_t batch = states.rows();
  const bool sds = config_.state_dependent_std;
  // d logp / d mu_j       = (u_j - mu_j) / sigma_j^2
  // d logp / d log sigma_j = z_j^2 - 1, with z = (u - mu)/sigma.
  // Entropy term (loss -entropy_coeff * H_bar):
  //   state-indep: dH/dlog sigma_j = 1 (H global)
  //   state-dep:   dH_bar/d raw_{b,j} = 1/B inside the clamp.
  grad_out_.resize_reuse(batch, sds ? 2 * action_dim_ : action_dim_);
  grad_out_.set_zero();  // clamp-saturated log-std entries stay zero
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < action_dim_; ++j) {
      const double ls = log_sigma_at(raw, b, j);
      const double sd = std::exp(ls);
      const double diff = actions_u(b, j) - raw(b, j);
      const double z = diff / sd;
      grad_out_(b, j) = coeff[b] * diff / (sd * sd);
      const double dlogp_dls = coeff[b] * (z * z - 1.0);
      if (sds) {
        if (log_sigma_in_range(raw, b, j)) {
          grad_out_(b, action_dim_ + j) =
              dlogp_dls -
              entropy_coeff / static_cast<double>(batch);
        }
      } else {
        grad_log_std_[j] += dlogp_dls;
      }
    }
  }
  if (!sds && entropy_coeff != 0.0) {
    for (std::size_t j = 0; j < action_dim_; ++j) {
      grad_log_std_[j] -= entropy_coeff;
    }
  }
  mean_net_.backward_cached(grad_out_, ws_);
}

double GaussianPolicy::entropy() const {
  if (config_.state_dependent_std) return last_entropy_;
  double h = 0.0;
  for (std::size_t j = 0; j < action_dim_; ++j) {
    h += log_std_[j] + 0.5 * (kLog2Pi + 1.0);
  }
  return h;
}

void GaussianPolicy::accumulate_entropy_grad(double coeff) {
  FEDRA_EXPECTS(!config_.state_dependent_std);
  for (std::size_t j = 0; j < action_dim_; ++j) grad_log_std_[j] += coeff;
}

std::vector<Matrix*> GaussianPolicy::params() {
  auto ps = mean_net_.params();
  if (!config_.state_dependent_std) ps.push_back(&log_std_);
  return ps;
}

std::vector<Matrix*> GaussianPolicy::grads() {
  auto gs = mean_net_.grads();
  if (!config_.state_dependent_std) gs.push_back(&grad_log_std_);
  return gs;
}

void GaussianPolicy::zero_grad() {
  mean_net_.zero_grad();
  grad_log_std_.set_zero();
}

void GaussianPolicy::clamp_log_std() {
  if (config_.state_dependent_std) return;  // clamped at evaluation time
  for (std::size_t j = 0; j < action_dim_; ++j) {
    log_std_[j] =
        std::clamp(log_std_[j], config_.min_log_std, config_.max_log_std);
  }
}

void GaussianPolicy::copy_params_from(GaussianPolicy& other) {
  auto dst = params();
  auto src = other.params();
  FEDRA_EXPECTS(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    FEDRA_EXPECTS(dst[i]->same_shape(*src[i]));
    *dst[i] = *src[i];
  }
}

void GaussianPolicy::save(const std::string& path) {
  std::vector<Matrix> values;
  for (Matrix* p : params()) values.push_back(*p);
  save_matrices(path, values);
}

void GaussianPolicy::load(const std::string& path) {
  auto values = load_matrices(path);
  auto ps = params();
  FEDRA_EXPECTS(values.size() == ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    FEDRA_EXPECTS(ps[i]->same_shape(values[i]));
    *ps[i] = values[i];
  }
}

}  // namespace fedra
