#include "rl/gae.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace fedra {

GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values,
                      const std::vector<double>& next_values,
                      const std::vector<bool>& episode_ends, double gamma,
                      double lambda) {
  const std::size_t n = rewards.size();
  FEDRA_EXPECTS(values.size() == n && next_values.size() == n &&
                episode_ends.size() == n);
  FEDRA_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  FEDRA_EXPECTS(lambda >= 0.0 && lambda <= 1.0);
  GaeResult r;
  r.advantages.resize(n);
  r.returns.resize(n);
  double gae = 0.0;
  for (std::size_t idx = n; idx-- > 0;) {
    // Truncation bootstraps: delta always uses V(s').
    const double delta =
        rewards[idx] + gamma * next_values[idx] - values[idx];
    if (episode_ends[idx]) gae = 0.0;  // do not smear credit across episodes
    gae = delta + gamma * lambda * gae;
    r.advantages[idx] = gae;
    r.returns[idx] = gae + values[idx];
  }
  return r;
}

void normalize_advantages(std::vector<double>& advantages) {
  if (advantages.size() < 2) return;
  double mean = 0.0;
  for (double a : advantages) mean += a;
  mean /= static_cast<double>(advantages.size());
  double var = 0.0;
  for (double a : advantages) var += (a - mean) * (a - mean);
  var /= static_cast<double>(advantages.size() - 1);
  const double sd = std::sqrt(var);
  if (sd < 1e-8) return;
  for (double& a : advantages) a = (a - mean) / sd;
}

}  // namespace fedra
