#include "rl/a2c.hpp"

#include <algorithm>
#include <cmath>

#include "rl/gae.hpp"
#include "util/contracts.hpp"

namespace fedra {

namespace {
std::vector<std::size_t> critic_sizes(std::size_t state_dim,
                                      const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(state_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(1);
  return sizes;
}
}  // namespace

A2cAgent::A2cAgent(std::size_t state_dim, std::size_t action_dim,
                   const PolicyConfig& policy_config, const PpoConfig& config,
                   std::uint64_t seed)
    : config_(config),
      policy_([&] {
        Rng rng(seed);
        return GaussianPolicy(state_dim, action_dim, policy_config, rng);
      }()),
      critic_([&] {
        Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
        return Mlp(critic_sizes(state_dim, config.critic_hidden),
                   config.critic_activation, rng);
      }()),
      actor_opt_(policy_.params(), policy_.grads(), config.actor_lr),
      critic_opt_(critic_, config.critic_lr) {
  if (config.grad_block_rows > 0 && !policy_config.state_dependent_std) {
    engine_ = std::make_unique<BlockGradEngine>(
        state_dim, action_dim, policy_config,
        critic_sizes(state_dim, config.critic_hidden),
        config.critic_activation, config.grad_block_rows);
  }
}

void A2cAgent::set_pool(ThreadPool* pool) {
  if (engine_ != nullptr) engine_->set_pool(pool);
}

PolicySample A2cAgent::act(const std::vector<double>& state, Rng& rng) {
  return policy_.act(state, rng);
}

std::vector<double> A2cAgent::mean_action(const std::vector<double>& state) {
  return policy_.mean_action(state);
}

double A2cAgent::value(const std::vector<double>& state) {
  critic_infer_in_.resize_reuse(1, state.size());
  for (std::size_t j = 0; j < state.size(); ++j) {
    critic_infer_in_(0, j) = state[j];
  }
  return critic_.forward_cached(critic_infer_in_, critic_infer_ws_)(0, 0);
}

UpdateStats A2cAgent::update(const RolloutBuffer& buffer, Rng& /*rng*/) {
  FEDRA_EXPECTS(buffer.size() > 0);
  const std::size_t n = buffer.size();
  const Matrix states = buffer.states_matrix();
  const Matrix next_states = buffer.next_states_matrix();
  const Matrix actions_u = buffer.actions_matrix();
  const std::vector<double> rewards = buffer.rewards();

  GaeResult gae =
      compute_gae(rewards, buffer.values(), buffer.next_values(),
                  buffer.episode_ends(), config_.gamma, config_.gae_lambda);
  normalize_advantages(gae.advantages);

  const double inv_n = 1.0 / static_cast<double>(n);

  // ---- Actor: vanilla policy gradient with advantages ----
  std::vector<double> logp;
  double policy_loss = 0.0;
  if (engine_ != nullptr) {
    // Block-sharded path (rl/block_grads.hpp): the whole buffer is one
    // "minibatch"; the coefficient is logp-independent here.
    auto coeff_fn = [&](std::size_t i, double /*lp*/) -> double {
      return -gae.advantages[i] * inv_n;
    };
    engine_->actor_pass(policy_, states, actions_u, coeff_fn,
                        config_.entropy_coef, logp);
    for (std::size_t i = 0; i < n; ++i) {
      policy_loss += -gae.advantages[i] * logp[i] * inv_n;
    }
  } else {
    logp = policy_.forward_log_probs(states, actions_u);
    std::vector<double> coeff(n);
    for (std::size_t i = 0; i < n; ++i) {
      policy_loss += -gae.advantages[i] * logp[i] * inv_n;
      coeff[i] = -gae.advantages[i] * inv_n;
    }
    policy_.zero_grad();
    policy_.backward_log_probs(states, actions_u, coeff,
                               config_.entropy_coef);
  }
  actor_opt_.clip_grad_norm(config_.max_grad_norm);
  actor_opt_.step();
  policy_.clamp_log_std();

  // ---- Critic: one TD fit ----
  Matrix next_v = critic_.forward(next_states);
  double value_loss = 0.0;
  if (engine_ != nullptr) {
    auto dloss_dv = [&](std::size_t i, double v) -> double {
      const double target = rewards[i] + config_.gamma * next_v(i, 0);
      return 2.0 * (v - target) * inv_n;
    };
    engine_->critic_pass(critic_, states, dloss_dv, v_vals_);
    for (std::size_t i = 0; i < n; ++i) {
      const double target = rewards[i] + config_.gamma * next_v(i, 0);
      const double err = v_vals_[i] - target;
      value_loss += err * err * inv_n;
    }
  } else {
    critic_.zero_grad();
    Matrix v = critic_.forward(states);
    Matrix grad_v(v.rows(), 1);
    for (std::size_t i = 0; i < n; ++i) {
      const double target = rewards[i] + config_.gamma * next_v(i, 0);
      const double err = v(i, 0) - target;
      value_loss += err * err * inv_n;
      grad_v(i, 0) = 2.0 * err * inv_n;
    }
    critic_.backward(grad_v);
  }
  critic_opt_.clip_grad_norm(config_.max_grad_norm);
  critic_opt_.step();

  UpdateStats stats;
  stats.policy_loss = policy_loss;
  stats.value_loss = value_loss;
  stats.entropy = policy_.entropy();
  stats.total_loss =
      policy_loss + value_loss - config_.entropy_coef * stats.entropy;
  stats.approx_kl = 0.0;
  stats.clip_fraction = 0.0;
  return stats;
}

}  // namespace fedra
