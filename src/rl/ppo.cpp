#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "rl/gae.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contracts.hpp"

namespace fedra {

namespace {

namespace tel = fedra::telemetry;

struct PpoMetrics {
  tel::Counter updates = tel::Telemetry::metrics().counter("ppo.updates");
  tel::Counter minibatches =
      tel::Telemetry::metrics().counter("ppo.minibatches");
  /// Tensor heap bytes allocated during update() — near zero once the
  /// workspaces have warmed up (the allocation-free-path acceptance
  /// metric).
  tel::Counter alloc_bytes =
      tel::Telemetry::metrics().counter("tensor.alloc_bytes");
  tel::Histogram actor_step_us =
      tel::Telemetry::metrics().histogram("ppo.actor_minibatch_us");
  tel::Histogram critic_step_us =
      tel::Telemetry::metrics().histogram("ppo.critic_minibatch_us");
  tel::Gauge last_kl = tel::Telemetry::metrics().gauge("ppo.approx_kl");
  tel::Gauge last_clip_fraction =
      tel::Telemetry::metrics().gauge("ppo.clip_fraction");
  tel::Gauge last_total_loss =
      tel::Telemetry::metrics().gauge("ppo.total_loss");
};

PpoMetrics& ppo_metrics() {
  static PpoMetrics m;
  return m;
}

std::vector<std::size_t> critic_sizes(std::size_t state_dim,
                                      const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(state_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(1);
  return sizes;
}

void gather_rows_into(const Matrix& src, const std::vector<std::size_t>& idx,
                      Matrix& out) {
  out.resize_reuse(idx.size(), src.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    auto dst_row = out.row(r);
    auto src_row = src.row(idx[r]);
    std::copy(src_row.begin(), src_row.end(), dst_row.begin());
  }
}

}  // namespace

PpoAgent::PpoAgent(std::size_t state_dim, std::size_t action_dim,
                   const PolicyConfig& policy_config, const PpoConfig& config,
                   std::uint64_t seed)
    : config_(config),
      policy_([&] {
        Rng rng(seed);
        return GaussianPolicy(state_dim, action_dim, policy_config, rng);
      }()),
      policy_old_([&] {
        Rng rng(seed);  // same seed -> identical initial weights
        return GaussianPolicy(state_dim, action_dim, policy_config, rng);
      }()),
      critic_([&] {
        Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
        return Mlp(critic_sizes(state_dim, config.critic_hidden),
                   config.critic_activation, rng);
      }()),
      actor_opt_(policy_.params(), policy_.grads(), config.actor_lr),
      critic_opt_(critic_, config.critic_lr) {
  FEDRA_EXPECTS(config.gamma >= 0.0 && config.gamma < 1.0);
  FEDRA_EXPECTS(config.clip_epsilon > 0.0);
  FEDRA_EXPECTS(config.update_epochs > 0 && config.minibatch_size > 0);
  if (config.grad_block_rows > 0 && !policy_config.state_dependent_std) {
    engine_ = std::make_unique<BlockGradEngine>(
        state_dim, action_dim, policy_config,
        critic_sizes(state_dim, config.critic_hidden),
        config.critic_activation, config.grad_block_rows);
  }
}

void PpoAgent::set_pool(ThreadPool* pool) {
  if (engine_ != nullptr) engine_->set_pool(pool);
}

PolicySample PpoAgent::act(const std::vector<double>& state, Rng& rng) {
  return policy_old_.act(state, rng);
}

std::vector<double> PpoAgent::mean_action(const std::vector<double>& state) {
  return policy_.mean_action(state);
}

void PpoAgent::mean_action_batch(const Matrix& states, Matrix& actions) {
  policy_.mean_action_batch(states, actions);
}

double PpoAgent::value(const std::vector<double>& state) {
  critic_infer_in_.resize_reuse(1, state.size());
  for (std::size_t j = 0; j < state.size(); ++j) {
    critic_infer_in_(0, j) = state[j];
  }
  return critic_.forward_cached(critic_infer_in_, critic_infer_ws_)(0, 0);
}

UpdateStats PpoAgent::update(const RolloutBuffer& buffer, Rng& rng) {
  FEDRA_EXPECTS(buffer.size() > 0);
  FEDRA_TRACE_SPAN("ppo_update");
  const TensorAllocStats alloc_before = tensor_alloc_stats();
  const std::size_t n = buffer.size();

  buffer.states_matrix_into(states_);
  buffer.next_states_matrix_into(next_states_);
  buffer.actions_matrix_into(actions_u_);
  const Matrix& states = states_;
  const Matrix& next_states = next_states_;
  const Matrix& actions_u = actions_u_;
  const std::vector<double> logp_old = buffer.log_probs();
  const std::vector<double> rewards = buffer.rewards();

  // Advantages from the collection-time value estimates (standard GAE).
  GaeResult gae =
      compute_gae(rewards, buffer.values(), buffer.next_values(),
                  buffer.episode_ends(), config_.gamma, config_.gae_lambda);
  normalize_advantages(gae.advantages);

  UpdateStats stats;
  double policy_loss_acc = 0.0;
  double value_loss_acc = 0.0;
  double clip_count = 0.0;
  std::size_t minibatches = 0;
  std::size_t samples_seen = 0;

  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    // Algorithm 1 line 20: TD targets r + gamma * V(s'; theta_v) under the
    // CURRENT critic, refreshed once per epoch (semi-gradient). The
    // critic workspace is immediately reused for minibatch passes, so
    // next_v is consumed into td_target_ before the first one.
    const Matrix& next_v = critic_.forward_cached(next_states, critic_ws_);
    td_target_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      td_target_[i] = rewards[i] + config_.gamma * next_v(i, 0);
    }

    auto perm = rng.permutation(n);
    for (std::size_t start = 0; start < n;
         start += config_.minibatch_size) {
      const std::size_t end = std::min(start + config_.minibatch_size, n);
      idx_.assign(perm.begin() + static_cast<std::ptrdiff_t>(start),
                  perm.begin() + static_cast<std::ptrdiff_t>(end));
      const std::vector<std::size_t>& idx = idx_;
      const double inv_b = 1.0 / static_cast<double>(idx.size());

      gather_rows_into(states, idx, mb_states_);
      gather_rows_into(actions_u, idx, mb_actions_);
      const Matrix& mb_states = mb_states_;
      const Matrix& mb_actions = mb_actions_;

      double mb_policy_loss = 0.0;
      double mb_value_loss = 0.0;
      const bool timed = tel::Telemetry::enabled();

      {
        // ---- Actor: clipped surrogate ----
        tel::ScopedTimer actor_timer(timed ? ppo_metrics().actor_step_us
                                           : tel::Histogram{});
        if (engine_ != nullptr) {
          // Block-sharded path: the per-row surrogate coefficient is
          // computed on the block's thread (pure function of shared
          // const data); loss/clip bookkeeping happens serially below
          // from the assembled log-probs, in the same ascending order as
          // the legacy path.
          auto coeff_fn = [&](std::size_t b, double lp) -> double {
            const double adv = gae.advantages[idx[b]];
            const double ratio = std::exp(lp - logp_old[idx[b]]);
            const bool clip_active =
                (adv > 0.0 && ratio > 1.0 + config_.clip_epsilon) ||
                (adv < 0.0 && ratio < 1.0 - config_.clip_epsilon);
            return clip_active ? 0.0 : -adv * ratio * inv_b;
          };
          engine_->actor_pass(policy_, mb_states, mb_actions, coeff_fn,
                              config_.entropy_coef, logp_new_);
        } else {
          policy_.forward_log_probs(mb_states, mb_actions, logp_new_);
          coeff_.assign(idx.size(), 0.0);
        }
        const std::vector<double>& logp_new = logp_new_;
        std::vector<double>& coeff = coeff_;
        for (std::size_t b = 0; b < idx.size(); ++b) {
          const double adv = gae.advantages[idx[b]];
          const double ratio = std::exp(logp_new[b] - logp_old[idx[b]]);
          const double clipped = std::clamp(ratio, 1.0 - config_.clip_epsilon,
                                            1.0 + config_.clip_epsilon);
          const double surr = std::min(ratio * adv, clipped * adv);
          mb_policy_loss += -surr * inv_b;
          const bool clip_active =
              (adv > 0.0 && ratio > 1.0 + config_.clip_epsilon) ||
              (adv < 0.0 && ratio < 1.0 - config_.clip_epsilon);
          if (clip_active) {
            clip_count += 1.0;
          } else if (engine_ == nullptr) {
            // d(-surr)/d logp = -adv * ratio (per sample, averaged).
            coeff[b] = -adv * ratio * inv_b;
          }
        }
        if (engine_ == nullptr) {
          policy_.zero_grad();
          // Entropy bonus folded into the same backward pass: the loss
          // includes -entropy_coef * H(pi).
          policy_.backward_log_probs(mb_states, mb_actions, coeff,
                                     config_.entropy_coef);
        }
        actor_opt_.clip_grad_norm(config_.max_grad_norm);
        actor_opt_.step();
        policy_.clamp_log_std();
      }

      {
        // ---- Critic: TD residual fit (squared or Huber) ----
        tel::ScopedTimer critic_timer(timed ? ppo_metrics().critic_step_us
                                            : tel::Histogram{});
        const double delta = config_.critic_huber_delta;
        if (engine_ != nullptr) {
          auto dloss_dv = [&](std::size_t b, double v) -> double {
            const double err = v - td_target_[idx[b]];
            if (delta > 0.0 && std::abs(err) > delta) {
              return (err > 0.0 ? delta : -delta) * inv_b;
            }
            return 2.0 * err * inv_b;
          };
          engine_->critic_pass(critic_, mb_states, dloss_dv, v_vals_);
          for (std::size_t b = 0; b < idx.size(); ++b) {
            const double err = v_vals_[b] - td_target_[idx[b]];
            if (delta > 0.0 && std::abs(err) > delta) {
              mb_value_loss += delta * (std::abs(err) - 0.5 * delta) * inv_b;
            } else {
              mb_value_loss += err * err * inv_b;
            }
          }
        } else {
          critic_.zero_grad();
          const Matrix& v = critic_.forward_cached(mb_states, critic_ws_);
          grad_v_.resize_reuse(v.rows(), 1);  // every entry assigned below
          for (std::size_t b = 0; b < idx.size(); ++b) {
            const double err = v(b, 0) - td_target_[idx[b]];
            if (delta > 0.0 && std::abs(err) > delta) {
              mb_value_loss += delta * (std::abs(err) - 0.5 * delta) * inv_b;
              grad_v_(b, 0) = (err > 0.0 ? delta : -delta) * inv_b;
            } else {
              mb_value_loss += err * err * inv_b;
              grad_v_(b, 0) = 2.0 * err * inv_b;
            }
          }
          critic_.backward_cached(grad_v_, critic_ws_);
        }
        critic_opt_.clip_grad_norm(config_.max_grad_norm);
        critic_opt_.step();
      }

      policy_loss_acc += mb_policy_loss;
      value_loss_acc += mb_value_loss;
      samples_seen += idx.size();
      ++minibatches;
    }
  }

  stats.policy_loss =
      minibatches > 0 ? policy_loss_acc / static_cast<double>(minibatches)
                      : 0.0;
  stats.value_loss =
      minibatches > 0 ? value_loss_acc / static_cast<double>(minibatches)
                      : 0.0;
  stats.clip_fraction =
      samples_seen > 0 ? clip_count / static_cast<double>(samples_seen) : 0.0;
  stats.entropy = policy_.entropy();
  stats.total_loss = stats.policy_loss + stats.value_loss -
                     config_.entropy_coef * stats.entropy;

  // Post-update KL(old || new) estimate over the full buffer.
  std::vector<double> logp_final = policy_.log_probs(states, actions_u);
  double kl = 0.0;
  for (std::size_t i = 0; i < n; ++i) kl += logp_old[i] - logp_final[i];
  stats.approx_kl = kl / static_cast<double>(n);

  // Algorithm 1 line 22: theta_a^old <- theta_a.
  policy_old_.copy_params_from(policy_);

  FEDRA_TELEMETRY_IF {
    auto& m = ppo_metrics();
    m.updates.add();
    m.minibatches.add(minibatches);
    m.last_kl.set(stats.approx_kl);
    m.last_clip_fraction.set(stats.clip_fraction);
    m.last_total_loss.set(stats.total_loss);
    m.alloc_bytes.add(tensor_alloc_stats().bytes - alloc_before.bytes);
  }
  return stats;
}

void PpoAgent::save(const std::string& prefix) {
  policy_.save(prefix + ".actor");
  critic_.save(prefix + ".critic");
}

void PpoAgent::load(const std::string& prefix) {
  policy_.load(prefix + ".actor");
  critic_.load(prefix + ".critic");
  policy_old_.copy_params_from(policy_);
}

}  // namespace fedra
