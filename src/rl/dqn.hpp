// Factored DQN over discretized frequencies — the value-based ablation.
//
// Section IV-B2 of the paper argues that value-based methods (Q-learning,
// SARSA, DQN) cannot handle the continuous joint action space: a JOINT
// discretization needs L^N outputs (10 levels, 50 devices -> 10^50). The
// tractable workaround is the "independent learners" factorization
// implemented here: one Q-head per device over L frequency levels, all
// heads sharing the network trunk and trained against the SHARED global
// reward. That factorization is exactly where the approach breaks — each
// head's target is polluted by the other devices' exploration (a
// non-stationarity the paper's policy-gradient choice avoids) — and the
// DQN ablation bench measures the resulting gap.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace fedra {

struct DqnConfig {
  std::vector<std::size_t> hidden = {64, 64};
  std::size_t levels = 10;      ///< discrete frequency fractions per device
  double gamma = 0.4;
  double lr = 1e-3;
  std::size_t batch_size = 64;
  std::size_t replay_capacity = 20000;
  std::size_t warmup = 256;
  std::size_t target_sync_every = 200;  ///< hard target update period
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_steps = 10000;
};

struct DqnStats {
  double td_loss = 0.0;
  double epsilon = 0.0;
};

class FactoredDqnAgent {
 public:
  FactoredDqnAgent(std::size_t state_dim, std::size_t num_devices,
                   const DqnConfig& config, std::uint64_t seed);

  std::size_t state_dim() const { return state_dim_; }
  std::size_t num_devices() const { return devices_; }
  std::size_t levels() const { return config_.levels; }

  /// Frequency fraction encoded by level l: (l + 1) / L, so level L-1 is
  /// full speed and level 0 is 1/L of the cap (never zero).
  double fraction_of(std::size_t level) const;

  /// Greedy per-device action (fractions in (0, 1]).
  std::vector<double> act(const std::vector<double>& state);

  /// Epsilon-greedy exploration; epsilon anneals with the step counter.
  std::vector<double> act_epsilon_greedy(const std::vector<double>& state,
                                         Rng& rng);

  /// Stores a transition; `action` must hold the fractions produced by
  /// act*/fraction_of (they are mapped back to levels exactly).
  void remember(OffPolicyTransition t);

  /// One minibatch update (no-op before warmup). Target net syncs every
  /// config.target_sync_every updates.
  DqnStats update(Rng& rng);

  /// Q-values of one state as an (devices x levels) matrix.
  Matrix q_values(const std::vector<double>& state);

  std::size_t steps() const { return env_steps_; }

 private:
  std::size_t level_of(double fraction) const;
  double current_epsilon() const;

  std::size_t state_dim_;
  std::size_t devices_;
  DqnConfig config_;
  Mlp online_;
  Mlp target_;
  Adam opt_;
  ReplayBuffer replay_;
  std::size_t env_steps_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace fedra
