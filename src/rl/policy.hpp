// Diagonal-Gaussian policy with a sigmoid squash — the actor network of
// the paper's DRL agent (Section IV-B2: continuous delta_i in (0, 1] of
// delta_i^max, so tabular/value methods are out and the policy is a neural
// network pi(a|s; theta_a)).
//
// Architecture: an MLP maps the state to the Gaussian mean mu(s) in
// u-space; log-std is a state-independent trainable vector. A sample
// u ~ N(mu, sigma) is squashed to the action a = sigmoid(u) in (0, 1).
// PPO ratios are formed in u-space: the squash Jacobian is identical under
// the old and new policies for a stored u, so it cancels in the ratio and
// never needs to be differentiated.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace fedra {

struct PolicyConfig {
  std::vector<std::size_t> hidden = {64, 64};
  Activation activation = Activation::Tanh;
  double init_log_std = -0.7;  ///< sigma ~ 0.5 in u-space
  double min_log_std = -5.0;
  double max_log_std = 1.0;
  /// false (default): log-std is a free state-independent parameter
  /// vector (the common PPO choice). true: the network emits 2A outputs —
  /// mean and log-std per action — so exploration width can depend on the
  /// observed bandwidth state (wider when the regime is ambiguous).
  bool state_dependent_std = false;
};

/// One sampled decision.
struct PolicySample {
  std::vector<double> action;    ///< sigmoid(u), in (0,1)^A
  std::vector<double> action_u;  ///< pre-squash Gaussian sample
  double log_prob = 0.0;         ///< log N(u; mu(s), sigma)
};

class GaussianPolicy {
 public:
  GaussianPolicy(std::size_t state_dim, std::size_t action_dim,
                 const PolicyConfig& config, Rng& rng);

  std::size_t state_dim() const { return state_dim_; }
  std::size_t action_dim() const { return action_dim_; }

  /// Stochastic action for one state (training-time exploration).
  PolicySample act(const std::vector<double>& state, Rng& rng);

  /// Deterministic action sigmoid(mu(s)) (online reasoning uses the mean,
  /// Section V-B2).
  std::vector<double> mean_action(const std::vector<double>& state);

  /// Batched deterministic actions: row b of `actions` is bit-identical to
  /// mean_action(states.row(b)) — every tensor kernel on this path sums in
  /// the same ascending-k order per output row, so batch composition never
  /// changes a row's bits. Routed through a persistent batched inference
  /// workspace (zero heap traffic once capacities warm up). NOT
  /// thread-safe: callers (the serve engine's batcher) must serialize.
  void mean_action_batch(const Matrix& states, Matrix& actions);

  /// log pi(u|s) for a batch, WITHOUT caching for backward (evaluation).
  std::vector<double> log_probs(const Matrix& states, const Matrix& actions_u);

  /// Forward pass that caches activations; returns per-row log pi(u|s).
  /// Must be followed by backward_log_probs on the same batch, and
  /// `states` must stay valid/unmodified until then (the network caches
  /// pointers, not copies).
  std::vector<double> forward_log_probs(const Matrix& states,
                                        const Matrix& actions_u);

  /// Capacity-reusing overload: writes the log-probs into `out`.
  void forward_log_probs(const Matrix& states, const Matrix& actions_u,
                         std::vector<double>& out);

  /// Accumulates gradients of
  ///   sum_b coeff[b] * log pi(u_b|s_b)  -  entropy_coeff * H_bar
  /// w.r.t. all policy parameters, where H_bar is the policy entropy
  /// (batch mean for state-dependent sigma). The caller encodes the
  /// surrogate objective in `coeff` (e.g. -adv * ratio / B for PPO) and
  /// the entropy-bonus weight in `entropy_coeff` (loss convention: a
  /// positive coefficient REWARDS entropy).
  void backward_log_probs(const Matrix& states, const Matrix& actions_u,
                          const std::vector<double>& coeff,
                          double entropy_coeff = 0.0);

  /// Policy entropy: exact for state-independent sigma; for
  /// state-dependent sigma, the batch-mean entropy of the most recent
  /// forward_log_probs call (0 before any call).
  double entropy() const;

  /// Adds d(entropy)/d(log_std) * coeff to the log-std gradient (entropy
  /// bonus). Only valid for state-independent sigma — state-dependent
  /// entropy must flow through backward_log_probs' entropy_coeff.
  void accumulate_entropy_grad(double coeff);

  std::vector<Matrix*> params();
  std::vector<Matrix*> grads();
  void zero_grad();

  /// Keeps log-std inside [min, max] after an optimizer step.
  void clamp_log_std();

  void copy_params_from(GaussianPolicy& other);
  void save(const std::string& path);
  void load(const std::string& path);

  const Matrix& log_std() const { return log_std_; }
  Mlp& mean_net() { return mean_net_; }

 private:
  /// Raw network output: A columns (mean) or 2A (mean + raw log-std).
  Matrix forward_raw(const Matrix& states) {
    return mean_net_.forward(states);
  }
  /// Clamped log-sigma of sample b, action j, given the raw net output.
  double log_sigma_at(const Matrix& raw, std::size_t b, std::size_t j) const;
  /// Whether the clamp is inactive (gradient passes) at (b, j).
  bool log_sigma_in_range(const Matrix& raw, std::size_t b,
                          std::size_t j) const;

  std::size_t state_dim_;
  std::size_t action_dim_;
  PolicyConfig config_;
  Mlp mean_net_;
  Matrix log_std_;       ///< state-independent mode only
  Matrix grad_log_std_;
  Workspace ws_;         ///< activation/gradient buffers for batch passes
  Workspace infer_ws_;   ///< single-row buffers for mean_action (kept
                         ///< separate so inference between training passes
                         ///< never invalidates cached_out_)
  Matrix infer_in_;      ///< persistent 1xS input row for mean_action
  Workspace batch_infer_ws_;  ///< NxS buffers for mean_action_batch (own
                              ///< workspace so serving never disturbs the
                              ///< single-row or training buffers)
  /// Raw output of the last forward_log_probs batch — a pointer into
  /// ws_, valid until the next cached pass.
  const Matrix* cached_out_ = nullptr;
  Matrix grad_out_;      ///< reused dLoss/dRaw buffer
  double last_entropy_ = 0.0;  ///< batch-mean entropy (state-dep mode)
};

}  // namespace fedra
