#include "rl/rollout.hpp"

namespace fedra {

RolloutBuffer::RolloutBuffer(std::size_t capacity) : capacity_(capacity) {
  FEDRA_EXPECTS(capacity > 0);
  transitions_.reserve(capacity);
}

void RolloutBuffer::push(Transition t) {
  FEDRA_EXPECTS(!full());
  FEDRA_EXPECTS(!t.state.empty() && !t.action_u.empty());
  FEDRA_EXPECTS(t.next_state.size() == t.state.size());
  if (!transitions_.empty()) {
    FEDRA_EXPECTS(t.state.size() == transitions_.front().state.size());
    FEDRA_EXPECTS(t.action_u.size() == transitions_.front().action_u.size());
  }
  transitions_.push_back(std::move(t));
}

Matrix RolloutBuffer::states_matrix() const {
  Matrix m;
  states_matrix_into(m);
  return m;
}

Matrix RolloutBuffer::next_states_matrix() const {
  Matrix m;
  next_states_matrix_into(m);
  return m;
}

Matrix RolloutBuffer::actions_matrix() const {
  Matrix m;
  actions_matrix_into(m);
  return m;
}

void RolloutBuffer::states_matrix_into(Matrix& m) const {
  FEDRA_EXPECTS(!transitions_.empty());
  const std::size_t dim = transitions_.front().state.size();
  m.resize_reuse(transitions_.size(), dim);
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    auto row = m.row(i);
    for (std::size_t j = 0; j < dim; ++j) row[j] = transitions_[i].state[j];
  }
}

void RolloutBuffer::next_states_matrix_into(Matrix& m) const {
  FEDRA_EXPECTS(!transitions_.empty());
  const std::size_t dim = transitions_.front().next_state.size();
  m.resize_reuse(transitions_.size(), dim);
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    auto row = m.row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = transitions_[i].next_state[j];
    }
  }
}

void RolloutBuffer::actions_matrix_into(Matrix& m) const {
  FEDRA_EXPECTS(!transitions_.empty());
  const std::size_t dim = transitions_.front().action_u.size();
  m.resize_reuse(transitions_.size(), dim);
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    auto row = m.row(i);
    for (std::size_t j = 0; j < dim; ++j) row[j] = transitions_[i].action_u[j];
  }
}

std::vector<double> RolloutBuffer::rewards() const {
  std::vector<double> v;
  v.reserve(size());
  for (const auto& t : transitions_) v.push_back(t.reward);
  return v;
}

std::vector<double> RolloutBuffer::values() const {
  std::vector<double> v;
  v.reserve(size());
  for (const auto& t : transitions_) v.push_back(t.value);
  return v;
}

std::vector<double> RolloutBuffer::next_values() const {
  std::vector<double> v;
  v.reserve(size());
  for (const auto& t : transitions_) v.push_back(t.next_value);
  return v;
}

std::vector<double> RolloutBuffer::log_probs() const {
  std::vector<double> v;
  v.reserve(size());
  for (const auto& t : transitions_) v.push_back(t.log_prob);
  return v;
}

std::vector<bool> RolloutBuffer::episode_ends() const {
  std::vector<bool> v;
  v.reserve(size());
  for (const auto& t : transitions_) v.push_back(t.episode_end);
  return v;
}

}  // namespace fedra
