// Prioritized experience replay (Schaul et al., cited by the paper's
// related-work survey): transitions are sampled with probability
// proportional to priority^alpha (priority = |TD error| + eps), with
// importance-sampling weights correcting the induced bias. Sampling and
// priority updates are O(log n) via a sum tree.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/replay.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fedra {

/// Complete binary tree whose leaves hold non-negative weights and whose
/// internal nodes cache subtree sums; find_prefix(u) locates the leaf
/// where the running prefix sum crosses u.
class SumTree {
 public:
  explicit SumTree(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  /// Sum of all leaf weights (the root lives at index 1; 0 is unused).
  double total() const { return nodes_[1]; }
  double get(std::size_t leaf) const;
  void set(std::size_t leaf, double weight);

  /// Returns the leaf index l such that u lands inside leaf l's weight
  /// span when scanning leaves left to right. Requires 0 <= u < total().
  std::size_t find_prefix(double u) const;

 private:
  std::size_t capacity_;   ///< leaves
  std::size_t base_;       ///< index of first leaf in nodes_
  std::vector<double> nodes_;
};

struct PrioritizedBatch {
  OffPolicyBatch batch;
  std::vector<std::size_t> indices;  ///< buffer slots (for priority updates)
  std::vector<double> weights;       ///< normalized IS weights in (0, 1]
};

class PrioritizedReplayBuffer {
 public:
  /// alpha: prioritization strength (0 = uniform); beta: IS correction
  /// strength (1 = full correction).
  PrioritizedReplayBuffer(std::size_t capacity, double alpha = 0.6,
                          double beta = 0.4);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return data_.size(); }

  /// New transitions get the current maximum priority so they are seen at
  /// least once.
  void push(OffPolicyTransition t);

  PrioritizedBatch sample(std::size_t batch, Rng& rng) const;

  /// Re-prioritizes sampled transitions with fresh |TD errors|.
  void update_priorities(const std::vector<std::size_t>& indices,
                         const std::vector<double>& td_errors);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  void set_beta(double beta);

 private:
  std::size_t capacity_;
  double alpha_;
  double beta_;
  double max_priority_ = 1.0;
  std::size_t next_ = 0;
  std::vector<OffPolicyTransition> data_;
  SumTree tree_;
  static constexpr double kEps = 1e-6;
};

}  // namespace fedra
