// Generalized Advantage Estimation (Schulman et al.). Episode ends in this
// system are time-limit truncations, not environment terminations, so the
// one-step TD residual always bootstraps with V(s'); the done flag only
// cuts the lambda-recursion across episode boundaries.
#pragma once

#include <vector>

namespace fedra {

struct GaeResult {
  std::vector<double> advantages;
  std::vector<double> returns;  ///< advantage + V(s): critic regression aid
};

GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values,
                      const std::vector<double>& next_values,
                      const std::vector<bool>& episode_ends, double gamma,
                      double lambda);

/// Normalizes advantages to zero mean / unit std in place (no-op for
/// fewer than two elements or ~zero variance).
void normalize_advantages(std::vector<double>& advantages);

}  // namespace fedra
