// Experience replay buffer D of Algorithm 1. PPO is on-policy, so the
// buffer is filled by theta_old, consumed for M update epochs, then
// cleared (Algorithm 1 lines 16-23) — it is a rollout buffer, not an
// off-policy replay store.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/contracts.hpp"

namespace fedra {

struct Transition {
  std::vector<double> state;
  std::vector<double> next_state;  ///< s' — re-evaluating TD targets
  /// Pre-squash Gaussian sample u (the action is sigmoid(u)); stored in
  /// u-space because PPO ratios need log pi(u|s), and the squash Jacobian
  /// cancels between old and new policies.
  std::vector<double> action_u;
  double log_prob = 0.0;  ///< log pi_old(u|s)
  double reward = 0.0;
  double value = 0.0;       ///< V(s) under the critic at collection time
  double next_value = 0.0;  ///< V(s') — bootstraps TD and truncated GAE
  bool episode_end = false; ///< episode boundary (time-limit truncation)
};

class RolloutBuffer {
 public:
  explicit RolloutBuffer(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return transitions_.size(); }
  bool full() const { return size() >= capacity_; }
  void clear() { transitions_.clear(); }

  void push(Transition t);

  const Transition& operator[](std::size_t i) const {
    FEDRA_EXPECTS(i < transitions_.size());
    return transitions_[i];
  }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// All states stacked as a (size x state_dim) batch.
  Matrix states_matrix() const;
  /// All next states stacked as (size x state_dim).
  Matrix next_states_matrix() const;
  /// All pre-squash actions stacked as (size x action_dim).
  Matrix actions_matrix() const;
  // Capacity-reusing variants for hot update loops (same values, no
  // fresh allocation once `m` has warmed up).
  void states_matrix_into(Matrix& m) const;
  void next_states_matrix_into(Matrix& m) const;
  void actions_matrix_into(Matrix& m) const;
  std::vector<double> rewards() const;
  std::vector<double> values() const;
  std::vector<double> next_values() const;
  std::vector<double> log_probs() const;
  std::vector<bool> episode_ends() const;

 private:
  std::size_t capacity_;
  std::vector<Transition> transitions_;
};

}  // namespace fedra
