#include "rl/replay.hpp"

namespace fedra {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  FEDRA_EXPECTS(capacity > 0);
  data_.reserve(capacity);
}

void ReplayBuffer::push(OffPolicyTransition t) {
  FEDRA_EXPECTS(!t.state.empty());
  FEDRA_EXPECTS(t.next_state.size() == t.state.size());
  FEDRA_EXPECTS(!t.action.empty());
  if (!data_.empty()) {
    FEDRA_EXPECTS(t.state.size() == data_.front().state.size());
    FEDRA_EXPECTS(t.action.size() == data_.front().action.size());
  }
  if (data_.size() < capacity_) {
    data_.push_back(std::move(t));
  } else {
    data_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

OffPolicyBatch ReplayBuffer::sample(std::size_t batch, Rng& rng) const {
  FEDRA_EXPECTS(!data_.empty());
  FEDRA_EXPECTS(batch > 0);
  const std::size_t sdim = data_.front().state.size();
  const std::size_t adim = data_.front().action.size();
  OffPolicyBatch out;
  out.states = Matrix(batch, sdim);
  out.actions = Matrix(batch, adim);
  out.next_states = Matrix(batch, sdim);
  out.rewards.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(data_.size()) - 1));
    const auto& t = data_[idx];
    for (std::size_t j = 0; j < sdim; ++j) {
      out.states(b, j) = t.state[j];
      out.next_states(b, j) = t.next_state[j];
    }
    for (std::size_t j = 0; j < adim; ++j) out.actions(b, j) = t.action[j];
    out.rewards[b] = t.reward;
  }
  return out;
}

}  // namespace fedra
