#include "sched/predictive.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fedra {

namespace {
constexpr double kMinPrediction = 1.0;  // bytes/s floor for solver inputs
}

// -------------------------------------------------------------- LastValue

void LastValuePredictor::initialize(
    const std::vector<double>& mean_bandwidths) {
  estimate_ = mean_bandwidths;
}

void LastValuePredictor::observe(
    const std::vector<double>& realized_bandwidths) {
  FEDRA_EXPECTS(realized_bandwidths.size() == estimate_.size());
  for (std::size_t i = 0; i < estimate_.size(); ++i) {
    if (realized_bandwidths[i] > 0.0) estimate_[i] = realized_bandwidths[i];
  }
}

// ------------------------------------------------------------------ EWMA

EwmaPredictor::EwmaPredictor(double beta) : beta_(beta) {
  FEDRA_EXPECTS(beta > 0.0 && beta <= 1.0);
}

void EwmaPredictor::initialize(const std::vector<double>& mean_bandwidths) {
  estimate_ = mean_bandwidths;
}

void EwmaPredictor::observe(const std::vector<double>& realized_bandwidths) {
  FEDRA_EXPECTS(realized_bandwidths.size() == estimate_.size());
  for (std::size_t i = 0; i < estimate_.size(); ++i) {
    if (realized_bandwidths[i] > 0.0) {
      estimate_[i] =
          (1.0 - beta_) * estimate_[i] + beta_ * realized_bandwidths[i];
    }
  }
}

// ----------------------------------------------------------- SlidingMean

SlidingMeanPredictor::SlidingMeanPredictor(std::size_t window)
    : window_(window) {
  FEDRA_EXPECTS(window > 0);
}

void SlidingMeanPredictor::initialize(
    const std::vector<double>& mean_bandwidths) {
  prior_ = mean_bandwidths;
  history_.assign(mean_bandwidths.size(), {});
}

void SlidingMeanPredictor::observe(
    const std::vector<double>& realized_bandwidths) {
  FEDRA_EXPECTS(realized_bandwidths.size() == history_.size());
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (realized_bandwidths[i] <= 0.0) continue;
    history_[i].push_back(realized_bandwidths[i]);
    if (history_[i].size() > window_) {
      history_[i].erase(history_[i].begin());
    }
  }
}

std::vector<double> SlidingMeanPredictor::predict() const {
  std::vector<double> out(prior_.size());
  for (std::size_t i = 0; i < prior_.size(); ++i) {
    if (history_[i].empty()) {
      out[i] = prior_[i];
      continue;
    }
    double acc = 0.0;
    for (double b : history_[i]) acc += b;
    out[i] = acc / static_cast<double>(history_[i].size());
  }
  return out;
}

// ------------------------------------------------------------------ Holt

HoltPredictor::HoltPredictor(double level_alpha, double trend_beta)
    : alpha_(level_alpha), beta_(trend_beta) {
  FEDRA_EXPECTS(level_alpha > 0.0 && level_alpha <= 1.0);
  FEDRA_EXPECTS(trend_beta >= 0.0 && trend_beta <= 1.0);
}

void HoltPredictor::initialize(const std::vector<double>& mean_bandwidths) {
  level_ = mean_bandwidths;
  trend_.assign(mean_bandwidths.size(), 0.0);
  seen_ = false;
}

void HoltPredictor::observe(const std::vector<double>& realized_bandwidths) {
  FEDRA_EXPECTS(realized_bandwidths.size() == level_.size());
  for (std::size_t i = 0; i < level_.size(); ++i) {
    if (realized_bandwidths[i] <= 0.0) continue;
    const double prev_level = level_[i];
    level_[i] = alpha_ * realized_bandwidths[i] +
                (1.0 - alpha_) * (level_[i] + trend_[i]);
    trend_[i] =
        beta_ * (level_[i] - prev_level) + (1.0 - beta_) * trend_[i];
  }
  seen_ = true;
}

std::vector<double> HoltPredictor::predict() const {
  std::vector<double> out(level_.size());
  for (std::size_t i = 0; i < level_.size(); ++i) {
    out[i] = std::max(level_[i] + (seen_ ? trend_[i] : 0.0), kMinPrediction);
  }
  return out;
}

// ------------------------------------------------------------ Controller

PredictiveController::PredictiveController(
    const SimulatorBase& sim, std::unique_ptr<BandwidthPredictor> predictor)
    : predictor_(std::move(predictor)) {
  FEDRA_EXPECTS(predictor_ != nullptr);
  std::vector<double> means;
  means.reserve(sim.num_devices());
  for (std::size_t i = 0; i < sim.num_devices(); ++i) {
    means.push_back(sim.trace(i).mean_bandwidth());
  }
  predictor_->initialize(means);
}

std::vector<double> PredictiveController::decide(const SimulatorBase& sim) {
  auto estimates = predictor_->predict();
  FEDRA_EXPECTS(estimates.size() == sim.num_devices());
  for (auto& e : estimates) e = std::max(e, kMinPrediction);
  return solve_with_bandwidths(sim.fleet(), estimates, sim.params(),
                               SimulatorBase::kMinFreqFraction)
      .freqs_hz;
}

void PredictiveController::observe(const IterationResult& result) {
  FEDRA_EXPECTS(result.has_device_outcomes());
  std::vector<double> realized;
  realized.reserve(result.num_device_slots());
  for (std::size_t i = 0; i < result.num_device_slots(); ++i) {
    realized.push_back(result.outcome(i).avg_bandwidth);
  }
  predictor_->observe(realized);
}

std::string PredictiveController::name() const {
  return "mpc-" + predictor_->name();
}

}  // namespace fedra
