// Bandwidth prediction + model-predictive control.
//
// Heuristic [3] and Static [4] are the two ends of a spectrum: "predict
// with the last observation" vs "predict with a fixed average". This
// module generalizes both into a Predictor interface feeding the shared
// deadline solver, and adds the estimators in between — sliding-window
// mean, EWMA, and Holt's double-exponential (level + trend) smoothing.
// The predictor ablation bench compares them all against the DRL agent.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/controller.hpp"
#include "sched/deadline_solver.hpp"

namespace fedra {

/// Online per-device bandwidth estimator. observe() is called once per
/// iteration with realized average bandwidths (Eq. 3); predict() returns
/// the estimates for the upcoming iteration.
class BandwidthPredictor {
 public:
  virtual ~BandwidthPredictor() = default;

  /// Called once before the run with each device's long-run mean — the
  /// same prior information the paper's baselines bootstrap from.
  virtual void initialize(const std::vector<double>& mean_bandwidths) = 0;

  virtual void observe(const std::vector<double>& realized_bandwidths) = 0;

  virtual std::vector<double> predict() const = 0;

  virtual std::string name() const = 0;
};

/// Predicts the previous iteration's bandwidth (the Heuristic rule [3]).
class LastValuePredictor final : public BandwidthPredictor {
 public:
  void initialize(const std::vector<double>& mean_bandwidths) override;
  void observe(const std::vector<double>& realized_bandwidths) override;
  std::vector<double> predict() const override { return estimate_; }
  std::string name() const override { return "last"; }

 private:
  std::vector<double> estimate_;
};

/// Exponentially weighted moving average: est <- (1-beta) est + beta obs.
class EwmaPredictor final : public BandwidthPredictor {
 public:
  explicit EwmaPredictor(double beta = 0.4);
  void initialize(const std::vector<double>& mean_bandwidths) override;
  void observe(const std::vector<double>& realized_bandwidths) override;
  std::vector<double> predict() const override { return estimate_; }
  std::string name() const override { return "ewma"; }

 private:
  double beta_;
  std::vector<double> estimate_;
};

/// Mean of the last `window` observations per device.
class SlidingMeanPredictor final : public BandwidthPredictor {
 public:
  explicit SlidingMeanPredictor(std::size_t window = 5);
  void initialize(const std::vector<double>& mean_bandwidths) override;
  void observe(const std::vector<double>& realized_bandwidths) override;
  std::vector<double> predict() const override;
  std::string name() const override { return "sliding"; }

 private:
  std::size_t window_;
  std::vector<std::vector<double>> history_;  ///< per device, ring content
  std::vector<double> prior_;
};

/// Holt's double exponential smoothing (level + trend): extrapolates the
/// bandwidth trend one iteration ahead. Predictions are floored at a
/// small positive value (a negative-trend extrapolation must not produce
/// a non-positive bandwidth).
class HoltPredictor final : public BandwidthPredictor {
 public:
  HoltPredictor(double level_alpha = 0.5, double trend_beta = 0.2);
  void initialize(const std::vector<double>& mean_bandwidths) override;
  void observe(const std::vector<double>& realized_bandwidths) override;
  std::vector<double> predict() const override;
  std::string name() const override { return "holt"; }

 private:
  double alpha_;
  double beta_;
  std::vector<double> level_;
  std::vector<double> trend_;
  bool seen_ = false;
};

/// Model-predictive controller: predictor -> deadline solver -> freqs.
/// With LastValuePredictor this IS the paper's Heuristic baseline; with a
/// degenerate "never update" predictor it would be Static.
class PredictiveController final : public Controller {
 public:
  PredictiveController(const SimulatorBase& sim,
                       std::unique_ptr<BandwidthPredictor> predictor);

  std::vector<double> decide(const SimulatorBase& sim) override;
  void observe(const IterationResult& result) override;
  std::string name() const override;

  const BandwidthPredictor& predictor() const { return *predictor_; }

 private:
  std::unique_ptr<BandwidthPredictor> predictor_;
};

}  // namespace fedra
