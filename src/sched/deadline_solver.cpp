#include "sched/deadline_solver.hpp"

#include <algorithm>
#include <cmath>

#include "sim/fleet_pricing.hpp"
#include "util/contracts.hpp"

namespace fedra {

std::vector<double> freqs_for_deadline(
    FleetView devices, const std::vector<double>& est_comm_times,
    double deadline, double tau, double min_freq_fraction) {
  FEDRA_EXPECTS(devices.size() == est_comm_times.size());
  FEDRA_EXPECTS(deadline > 0.0 && tau > 0.0);
  std::vector<double> freqs(devices.size());
  fleet::deadline_freqs(devices.size(), tau, min_freq_fraction, deadline,
                        devices.cycles_per_bit().data(),
                        devices.dataset_bits().data(),
                        devices.max_freq_hz().data(), est_comm_times.data(),
                        freqs.data());
  return freqs;
}

double predicted_cost(FleetView devices,
                      const std::vector<double>& est_comm_times,
                      const std::vector<double>& freqs_hz,
                      const CostParams& params) {
  FEDRA_EXPECTS(devices.size() == est_comm_times.size());
  FEDRA_EXPECTS(devices.size() == freqs_hz.size());
  const std::size_t n = devices.size();
  std::vector<double> time(n);
  std::vector<double> energy_terms(n);
  fleet::predicted_terms(n, params.tau, devices.cycles_per_bit().data(),
                         devices.dataset_bits().data(),
                         devices.capacitance().data(),
                         devices.tx_power_w().data(), est_comm_times.data(),
                         freqs_hz.data(), time.data(), energy_terms.data());
  // Sequential reductions in device order — bit-identical to the legacy
  // per-device loop regardless of the SIMD tier above.
  double makespan = 0.0;
  double energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    makespan = std::max(makespan, time[i]);
    energy += energy_terms[i];
  }
  return iteration_cost(makespan, energy, params);
}

double min_deadline(FleetView devices,
                    const std::vector<double>& est_comm_times, double tau) {
  FEDRA_EXPECTS(devices.size() == est_comm_times.size());
  double t = 0.0;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const double min_cmp =
        tau * devices.cycles_per_bit(i) * devices.dataset_bits(i) /
        devices.max_freq_hz(i);
    t = std::max(t, min_cmp + est_comm_times[i]);
  }
  return t;
}

double max_deadline(FleetView devices,
                    const std::vector<double>& est_comm_times, double tau,
                    double min_freq_fraction) {
  FEDRA_EXPECTS(min_freq_fraction > 0.0);
  FEDRA_EXPECTS(devices.size() == est_comm_times.size());
  double t = 0.0;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const double floor_hz = min_freq_fraction * devices.max_freq_hz(i);
    const double slow_cmp =
        tau * devices.cycles_per_bit(i) * devices.dataset_bits(i) / floor_hz;
    t = std::max(t, slow_cmp + est_comm_times[i]);
  }
  return t;
}

DeadlineSolution solve_deadline(FleetView devices,
                                const std::vector<double>& est_comm_times,
                                const CostParams& params,
                                double min_freq_fraction, double tolerance) {
  FEDRA_EXPECTS(!devices.empty());
  FEDRA_EXPECTS(tolerance > 0.0);

  const double lo0 = min_deadline(devices, est_comm_times, params.tau);
  const double hi0 =
      max_deadline(devices, est_comm_times, params.tau, min_freq_fraction);
  FEDRA_ENSURES(hi0 >= lo0);

  const auto cost_at = [&](double deadline) {
    const auto freqs = freqs_for_deadline(devices, est_comm_times, deadline,
                                          params.tau, min_freq_fraction);
    return predicted_cost(devices, est_comm_times, freqs, params);
  };

  // Golden-section search on the convex cost(T).
  constexpr double kInvPhi = 0.6180339887498949;
  double lo = lo0;
  double hi = hi0;
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  double f1 = cost_at(x1);
  double f2 = cost_at(x2);
  while (hi - lo > tolerance) {
    if (f1 <= f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      f1 = cost_at(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      f2 = cost_at(x2);
    }
  }

  DeadlineSolution best;
  // Compare the interior optimum against the bracket ends (the optimum can
  // sit exactly at T_min when lambda is tiny).
  best.deadline = 0.5 * (lo + hi);
  double best_cost = cost_at(best.deadline);
  for (double cand : {lo0, hi0}) {
    const double c = cost_at(cand);
    if (c < best_cost) {
      best_cost = c;
      best.deadline = cand;
    }
  }
  best.freqs_hz = freqs_for_deadline(devices, est_comm_times, best.deadline,
                                     params.tau, min_freq_fraction);
  best.predicted_cost = best_cost;
  return best;
}

DeadlineSolution solve_with_bandwidths(
    FleetView devices, const std::vector<double>& est_bandwidths,
    const CostParams& params, double min_freq_fraction) {
  FEDRA_EXPECTS(devices.size() == est_bandwidths.size());
  std::vector<double> comm_times(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    FEDRA_EXPECTS(est_bandwidths[i] > 0.0);
    comm_times[i] = params.model_bytes / est_bandwidths[i];
  }
  return solve_deadline(devices, comm_times, params, min_freq_fraction);
}

}  // namespace fedra
