// The comparison controllers of the paper's evaluation (Section V-A), plus
// two calibration points:
//
//   Heuristic [3]  — re-solves the frequency assignment each iteration
//                    using the bandwidth REALIZED in the previous
//                    iteration ("the parameter server could know all the
//                    mobile devices' bandwidth information" from the
//                    round that just ended);
//   Static    [4]  — assumes the network is static: samples some bandwidth
//                    measurements up front, solves once for the average,
//                    and uses the same frequencies in every iteration;
//   FullSpeed      — delta_i = delta_i^max always (no DVFS at all);
//   Oracle         — optimizes against the TRUE future bandwidth of the
//                    upcoming iteration via simulator preview. NEARLY a
//                    clairvoyant lower bound: it searches deadline-matched
//                    assignments (every participant targets one completion
//                    time T) over a grid+golden scan of T, which is the
//                    optimal FAMILY when comm energy is start-time
//                    independent but can be off by a hair when upload
//                    windows make later starts cheaper. Treat it as a
//                    near-optimal reference, not an exact bound.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/controller.hpp"
#include "sched/deadline_solver.hpp"
#include "util/rng.hpp"

namespace fedra {

class FullSpeedController final : public Controller {
 public:
  std::vector<double> decide(const SimulatorBase& sim) override;
  std::string name() const override { return "fullspeed"; }
};

class StaticController final : public Controller {
 public:
  /// Draws `probe_samples` random bandwidth measurements per device from
  /// its trace, averages them, and solves the deadline problem once.
  StaticController(const SimulatorBase& sim, std::size_t probe_samples,
                   Rng& rng);

  std::vector<double> decide(const SimulatorBase& sim) override;
  std::string name() const override { return "static"; }

  const std::vector<double>& fixed_freqs() const { return freqs_; }

 private:
  std::vector<double> freqs_;
};

class HeuristicController final : public Controller {
 public:
  /// Until the first observation arrives, falls back to the per-device
  /// mean trace bandwidth (same information the Static baseline gets).
  explicit HeuristicController(const SimulatorBase& sim);

  std::vector<double> decide(const SimulatorBase& sim) override;
  void observe(const IterationResult& result) override;
  std::string name() const override { return "heuristic"; }

 private:
  std::vector<double> last_bandwidths_;
};

class OracleController final : public Controller {
 public:
  /// `grid_points` coarse deadlines are evaluated with true previews; the
  /// best bracket is refined by golden-section.
  explicit OracleController(std::size_t grid_points = 48);

  std::vector<double> decide(const SimulatorBase& sim) override;
  std::string name() const override { return "oracle"; }

 private:
  std::vector<double> freqs_for_true_deadline(const SimulatorBase& sim,
                                              double deadline) const;
  double true_cost(const SimulatorBase& sim, double deadline) const;

  std::size_t grid_points_;
};

}  // namespace fedra
