// Per-iteration frequency optimization under a bandwidth ESTIMATE.
//
// Given estimated per-device communication times t_hat_i, the iteration
// cost as a function of the deadline T is
//
//   cost(T) = max(T, T_min) + lambda * sum_i [ tau alpha_i c_i D_i
//             delta_i(T)^2 + e_i t_hat_i ],
//   delta_i(T) = clamp( tau c_i D_i / (T - t_hat_i), floor, delta_i^max ),
//
// i.e. every device slows down exactly enough to finish at T (never below
// the simulator's frequency floor, never above its cap). On the feasible
// region T >= T_min = max_i (t_cmp^min_i + t_hat_i), each energy term is
// convex and decreasing in T and the makespan is linear, so cost(T) is
// strictly convex and golden-section search finds the optimum. Both
// paper baselines (Heuristic [3] and Static [4]) reduce to this solver —
// they differ only in where t_hat_i comes from.
//
// The solver takes the fleet as a FleetView (SoA columns), so the inner
// per-device maps run through the vectorized fleet kernels; the makespan
// and energy reductions stay sequential scalar sums, which keeps every
// result bit-identical to the per-device legacy loop. Call sites holding
// an AoS vector columnize once via FleetState and pass the view.
#pragma once

#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/fleet_state.hpp"

namespace fedra {

struct DeadlineSolution {
  double deadline = 0.0;         ///< optimal T
  std::vector<double> freqs_hz;  ///< delta_i(T*)
  double predicted_cost = 0.0;   ///< cost(T*) under the estimates
};

/// Minimal feasible frequencies for finishing by `deadline` given the
/// estimated comm times (clamped to [floor, delta_i^max]).
std::vector<double> freqs_for_deadline(FleetView devices,
                                       const std::vector<double>& est_comm_times,
                                       double deadline, double tau,
                                       double min_freq_fraction);

/// Predicted cost of running `freqs_hz` when comm times equal the
/// estimates (makespan = max_i of estimated completion).
double predicted_cost(FleetView devices,
                      const std::vector<double>& est_comm_times,
                      const std::vector<double>& freqs_hz,
                      const CostParams& params);

/// Earliest feasible deadline: every device at delta_i^max.
double min_deadline(FleetView devices,
                    const std::vector<double>& est_comm_times, double tau);

/// Latest deadline worth considering: every device at its frequency floor.
double max_deadline(FleetView devices,
                    const std::vector<double>& est_comm_times, double tau,
                    double min_freq_fraction);

/// Golden-section minimization of cost(T) over [min_deadline,
/// max_deadline]. `tolerance` is the absolute bracket width at which the
/// search stops.
DeadlineSolution solve_deadline(FleetView devices,
                                const std::vector<double>& est_comm_times,
                                const CostParams& params,
                                double min_freq_fraction = 0.01,
                                double tolerance = 1e-4);

/// Convenience: turns estimated bandwidths (bytes/s) into comm times
/// xi / B_hat and solves.
DeadlineSolution solve_with_bandwidths(FleetView devices,
                                       const std::vector<double>& est_bandwidths,
                                       const CostParams& params,
                                       double min_freq_fraction = 0.01);

}  // namespace fedra
