// Controller interface: anything that can pick per-device CPU-cycle
// frequencies at the start of an iteration. Implemented by the model-based
// baselines (fedra::sched) and by the DRL agent (fedra::core), so the
// evaluation harness runs them all through one loop — against either the
// synchronous or the asynchronous simulator (both derive SimulatorBase).
#pragma once

#include <string>
#include <vector>

#include "sim/simulator_base.hpp"

namespace fedra {

class Controller {
 public:
  virtual ~Controller() = default;

  /// Frequencies (Hz) for the iteration starting at sim.now(). Must not
  /// advance the simulator.
  virtual std::vector<double> decide(const SimulatorBase& sim) = 0;

  /// Feedback after the iteration completes; default ignores it.
  virtual void observe(const IterationResult& result) { (void)result; }

  virtual std::string name() const = 0;
};

}  // namespace fedra
