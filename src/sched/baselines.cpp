#include "sched/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fedra {

// ---------------------------------------------------------------- FullSpeed

std::vector<double> FullSpeedController::decide(const SimulatorBase& sim) {
  const FleetView fleet = sim.fleet();
  std::vector<double> freqs;
  freqs.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    freqs.push_back(fleet.max_freq_hz(i));
  }
  return freqs;
}

// ------------------------------------------------------------------- Static

StaticController::StaticController(const SimulatorBase& sim,
                                   std::size_t probe_samples, Rng& rng) {
  FEDRA_EXPECTS(probe_samples > 0);
  std::vector<double> est(sim.num_devices());
  for (std::size_t i = 0; i < sim.num_devices(); ++i) {
    const auto& trace = sim.trace(i);
    double acc = 0.0;
    for (std::size_t s = 0; s < probe_samples; ++s) {
      acc += trace.bandwidth_at(rng.uniform(0.0, trace.duration()));
    }
    est[i] = acc / static_cast<double>(probe_samples);
  }
  freqs_ = solve_with_bandwidths(sim.fleet(), est, sim.params(),
                                 SimulatorBase::kMinFreqFraction)
               .freqs_hz;
}

std::vector<double> StaticController::decide(const SimulatorBase& sim) {
  FEDRA_EXPECTS(freqs_.size() == sim.num_devices());
  return freqs_;
}

// ---------------------------------------------------------------- Heuristic

HeuristicController::HeuristicController(const SimulatorBase& sim) {
  last_bandwidths_.reserve(sim.num_devices());
  for (std::size_t i = 0; i < sim.num_devices(); ++i) {
    last_bandwidths_.push_back(sim.trace(i).mean_bandwidth());
  }
}

std::vector<double> HeuristicController::decide(const SimulatorBase& sim) {
  FEDRA_EXPECTS(last_bandwidths_.size() == sim.num_devices());
  return solve_with_bandwidths(sim.fleet(), last_bandwidths_, sim.params(),
                               SimulatorBase::kMinFreqFraction)
      .freqs_hz;
}

void HeuristicController::observe(const IterationResult& result) {
  FEDRA_EXPECTS(result.has_device_outcomes());
  FEDRA_EXPECTS(result.num_device_slots() == last_bandwidths_.size());
  for (std::size_t i = 0; i < result.num_device_slots(); ++i) {
    const double bw = result.outcome(i).avg_bandwidth;
    if (bw > 0.0) last_bandwidths_[i] = bw;
  }
}

// ------------------------------------------------------------------- Oracle

OracleController::OracleController(std::size_t grid_points)
    : grid_points_(grid_points) {
  FEDRA_EXPECTS(grid_points >= 4);
}

std::vector<double> OracleController::freqs_for_true_deadline(
    const SimulatorBase& sim, double deadline) const {
  // For each device independently: the smallest frequency whose TRUE
  // completion time (compute + trace-integral upload) is <= deadline.
  // Completion time is non-increasing in frequency, so bisect.
  const double start = sim.now();
  const auto& params = sim.params();
  std::vector<double> freqs(sim.num_devices());
  for (std::size_t i = 0; i < sim.num_devices(); ++i) {
    const DeviceProfile d = sim.fleet().device(i);
    const auto& trace = sim.trace(i);
    const auto completion = [&](double f) {
      const double cmp = d.compute_time(f, params.tau);
      return cmp + trace.upload_duration(start + cmp, params.model_bytes);
    };
    const double floor_hz = SimulatorBase::kMinFreqFraction * d.max_freq_hz;
    if (completion(d.max_freq_hz) >= deadline) {
      freqs[i] = d.max_freq_hz;  // even flat-out misses it
      continue;
    }
    if (completion(floor_hz) <= deadline) {
      freqs[i] = floor_hz;  // even the floor makes it
      continue;
    }
    double lo = floor_hz;  // completion(lo) > deadline
    double hi = d.max_freq_hz;  // completion(hi) < deadline
    for (int iter = 0; iter < 60 && hi - lo > 1e3; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (completion(mid) <= deadline) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    freqs[i] = hi;
  }
  return freqs;
}

double OracleController::true_cost(const SimulatorBase& sim,
                                   double deadline) const {
  const auto freqs = freqs_for_true_deadline(sim, deadline);
  return sim.preview(freqs, {}).cost;
}

std::vector<double> OracleController::decide(const SimulatorBase& sim) {
  const double start = sim.now();
  const auto& params = sim.params();

  // Bracket: fastest possible finish .. everyone at the frequency floor.
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < sim.num_devices(); ++i) {
    const DeviceProfile d = sim.fleet().device(i);
    const auto& trace = sim.trace(i);
    const double cmp_fast = d.min_compute_time(params.tau);
    lo = std::max(lo, cmp_fast + trace.upload_duration(start + cmp_fast,
                                                       params.model_bytes));
    const double floor_hz = SimulatorBase::kMinFreqFraction * d.max_freq_hz;
    const double cmp_slow = d.compute_time(floor_hz, params.tau);
    hi = std::max(hi, cmp_slow + trace.upload_duration(start + cmp_slow,
                                                       params.model_bytes));
  }
  hi = std::max(hi, lo * (1.0 + 1e-9));

  // Realized cost(T) need not be convex (the trace integral is piecewise
  // linear), so scan a grid first, then golden-section the best bracket.
  double best_t = lo;
  double best_c = true_cost(sim, lo);
  const double step = (hi - lo) / static_cast<double>(grid_points_ - 1);
  for (std::size_t g = 1; g < grid_points_; ++g) {
    const double t = lo + static_cast<double>(g) * step;
    const double c = true_cost(sim, t);
    if (c < best_c) {
      best_c = c;
      best_t = t;
    }
  }

  constexpr double kInvPhi = 0.6180339887498949;
  double a = std::max(lo, best_t - step);
  double b = std::min(hi, best_t + step);
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = true_cost(sim, x1);
  double f2 = true_cost(sim, x2);
  for (int iter = 0; iter < 40 && b - a > 1e-4; ++iter) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = true_cost(sim, x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = true_cost(sim, x2);
    }
  }
  const double refined = 0.5 * (a + b);
  if (true_cost(sim, refined) < best_c) best_t = refined;
  return freqs_for_true_deadline(sim, best_t);
}

}  // namespace fedra
