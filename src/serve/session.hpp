// Session multiplexing for the serving engine: one engine (one policy)
// answers many independent federations, each with its own per-session
// state — an optional running observation normalizer, a seeded
// deterministic RNG stream, and decision counters.
//
// Determinism rules:
//   * session ids are assigned sequentially from 1 in open() order, so a
//     replayed open/close script yields identical ids;
//   * each session's RNG seed is a pure SplitMix64 hash of
//     (base_seed, id) — independent of wall clock, thread interleaving,
//     or how many decisions other sessions have made. The seed is the
//     hook later work (the TCP worker substrate) uses to keep per-session
//     scheduling draws reproducible;
//   * the engine's per-row bit-exactness means a session's decision
//     depends only on its own state sequence, never on which other
//     sessions' requests shared a batch.
//
// Thread safety: the table is guarded by a shared mutex (decide() takes
// it shared), each session by its own mutex — two federations never
// serialize against each other on the session layer, only inside the
// engine's queue.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>

#include "env/normalizer.hpp"
#include "serve/engine.hpp"

namespace fedra::serve {

struct SessionConfig {
  /// Pass states through a per-session RunningNormalizer (observe +
  /// normalize) before inference. Off by default: the paper's controller
  /// is trained on raw scaled states, and serving must stay bit-compatible
  /// with DrlController.
  bool normalize = false;
  /// Frozen normalizer: normalize without updating the moments (use when
  /// the training-time moments are restored into the session).
  bool freeze_normalizer = false;
};

struct SessionInfo {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;       ///< derived, deterministic in (base, id)
  std::uint64_t decisions = 0;  ///< kOk results returned
  std::uint64_t failures = 0;   ///< shed / expired / rejected results
};

class SessionManager {
 public:
  /// Non-owning: `engine` must outlive the manager.
  SessionManager(InferenceEngine& engine, std::uint64_t base_seed = 0);

  InferenceEngine& engine() { return engine_; }

  /// Opens a session; returns its id (sequential from 1).
  std::uint64_t open(const SessionConfig& config = {});

  /// Closes a session; false if the id is unknown.
  bool close(std::uint64_t id);

  std::size_t active() const;

  /// Info snapshot; id 0 in the result marks an unknown session.
  SessionInfo info(std::uint64_t id) const;

  /// Mutable access to a session's normalizer (e.g. to restore
  /// training-time moments before freezing). nullptr if unknown.
  RunningNormalizer* normalizer(std::uint64_t id);

  /// Decide through the session: applies the per-session normalizer when
  /// configured, then rides the engine's batcher. Unknown ids fail with
  /// kBadRequest without touching the engine.
  DecideResult decide(std::uint64_t id, std::span<const double> state,
                      double deadline_us = -1.0);

  /// Capacity-reusing overload (see InferenceEngine::decide).
  void decide(std::uint64_t id, std::span<const double> state,
              DecideResult& out, double deadline_us = -1.0);

 private:
  struct Session {
    SessionConfig config;
    SessionInfo info;
    RunningNormalizer normalizer;
    std::vector<double> scratch;  ///< normalized-state buffer
    std::mutex mu;                ///< serializes this session's decides

    Session(std::size_t dim) : normalizer(dim) {}
  };

  InferenceEngine& engine_;
  std::uint64_t base_seed_;
  mutable std::shared_mutex table_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> table_;
  std::uint64_t next_id_ = 1;
};

}  // namespace fedra::serve
