#include "serve/session.hpp"

#include "util/rng.hpp"

namespace fedra::serve {

SessionManager::SessionManager(InferenceEngine& engine,
                               std::uint64_t base_seed)
    : engine_(engine), base_seed_(base_seed) {}

std::uint64_t SessionManager::open(const SessionConfig& config) {
  std::unique_lock lock(table_mu_);
  const std::uint64_t id = next_id_++;
  auto session = std::make_unique<Session>(engine_.state_dim());
  session->config = config;
  session->info.id = id;
  // Pure hash of (base_seed, id): two SplitMix64 steps mix the pair into
  // a stream seed that is stable across runs and table layouts.
  SplitMix64 mix(base_seed_ ^ (id * 0x9e3779b97f4a7c15ULL));
  session->info.seed = mix.next();
  if (config.freeze_normalizer) session->normalizer.freeze();
  table_.emplace(id, std::move(session));
  return id;
}

bool SessionManager::close(std::uint64_t id) {
  std::unique_lock lock(table_mu_);
  return table_.erase(id) > 0;
}

std::size_t SessionManager::active() const {
  std::shared_lock lock(table_mu_);
  return table_.size();
}

SessionInfo SessionManager::info(std::uint64_t id) const {
  std::shared_lock lock(table_mu_);
  const auto it = table_.find(id);
  if (it == table_.end()) return {};
  std::lock_guard session_lock(it->second->mu);
  return it->second->info;
}

RunningNormalizer* SessionManager::normalizer(std::uint64_t id) {
  std::shared_lock lock(table_mu_);
  const auto it = table_.find(id);
  return it == table_.end() ? nullptr : &it->second->normalizer;
}

DecideResult SessionManager::decide(std::uint64_t id,
                                    std::span<const double> state,
                                    double deadline_us) {
  DecideResult out;
  decide(id, state, out, deadline_us);
  return out;
}

void SessionManager::decide(std::uint64_t id, std::span<const double> state,
                            DecideResult& out, double deadline_us) {
  std::shared_lock lock(table_mu_);
  const auto it = table_.find(id);
  if (it == table_.end()) {
    out.status = DecideStatus::kBadRequest;
    out.action.clear();
    out.batch_rows = 0;
    out.queue_wait_us = 0.0;
    return;
  }
  Session& session = *it->second;

  std::unique_lock session_lock(session.mu);
  if (session.config.normalize) {
    std::vector<double> x(state.begin(), state.end());
    session.normalizer.observe(x);
    session.scratch = session.normalizer.normalize(x);
    // The scratch buffer stays valid for the whole blocking decide(): the
    // session lock is held until the engine answers, which also gives
    // each session one in-flight request at a time.
    engine_.decide(session.scratch, out, deadline_us);
  } else {
    engine_.decide(state, out, deadline_us);
  }
  if (out.ok()) {
    ++session.info.decisions;
  } else {
    ++session.info.failures;
  }
}

}  // namespace fedra::serve
