// Batched controller-as-a-service inference engine (ROADMAP item 4a).
//
// Many concurrent federations issue decide() calls against one policy; a
// single policy instance is not thread-safe, so the naive service is a
// mutex around mean_action — one state at a time, and the PR 4 blocked
// GEMM kernels never see batch > 1. InferenceEngine instead runs a
// request queue + micro-batcher:
//
//   client threads --decide()--> bounded queue --pop<=max_batch--+
//                                                                |
//        results <-- per-request wakeup <-- mean_action_batch <--+
//                                           (one N x S forward)
//
// Admission control and backpressure:
//   * queue depth is bounded: a decide() arriving at a full queue is shed
//     immediately with DecideStatus::kOverloaded (the caller falls back,
//     e.g. to its previous action) instead of growing latency unboundedly;
//   * each request carries a deadline (0 = none): if its queue wait
//     exceeds it by the time the batcher pops it, the request completes
//     with kDeadlineExceeded and never occupies a batch row;
//   * stop() drains: new arrivals are refused with kShutdown, everything
//     already admitted is still served, then the batcher exits — no
//     request is ever left unanswered (clients block until completion,
//     which is what makes stack-owned request nodes safe).
//
// Batching is greedy by default: the batcher pops whatever is queued (up
// to max_batch) and runs it immediately — no timer delay, so an idle
// engine adds one queue hop of latency while a loaded engine naturally
// coalesces deep batches. ServeConfig::batch_window_us optionally waits
// for a full batch (bounded by the window) before firing. Determinism:
// per-row bit-exactness of BatchPolicy means a result never depends on
// batch composition or arrival order.
//
// Telemetry (when enabled): serve.decide_us / serve.batch_rows /
// serve.queue_depth histograms and serve.{admitted,served,shed,expired}
// counters. An always-on ServeStats snapshot (plain counters under the
// queue lock) backs tests and bench_serve without telemetry.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "serve/batch_policy.hpp"
#include "tensor/matrix.hpp"

namespace fedra::serve {

enum class DecideStatus : std::uint8_t {
  kOk = 0,
  kOverloaded,         ///< shed at admission: queue was at max_queue_depth
  kDeadlineExceeded,   ///< queue wait exceeded the request's deadline
  kShutdown,           ///< engine stopped (or stopping) before admission
  kBadRequest,         ///< state size != policy state_dim
};

const char* to_string(DecideStatus status);

struct ServeConfig {
  /// Max rows coalesced into one forward pass.
  std::size_t max_batch = 64;
  /// Admission bound: decide() sheds (kOverloaded) beyond this many
  /// queued-but-unserved requests.
  std::size_t max_queue_depth = 1024;
  /// Deadline applied to requests that do not carry their own
  /// (microseconds of queue wait; 0 = no deadline).
  double default_deadline_us = 0.0;
  /// Micro-batching window: after work arrives, wait up to this long for
  /// the queue to reach max_batch before firing the forward pass. 0
  /// (default) = greedy — pop whatever is queued immediately. A small
  /// window trades one queue-hop of latency for full batches; under high
  /// offered load on few cores it also yields the batcher's timeslice to
  /// the threads still enqueueing.
  double batch_window_us = 0.0;
};

struct DecideResult {
  DecideStatus status = DecideStatus::kShutdown;
  std::vector<double> action;   ///< filled iff status == kOk
  std::size_t batch_rows = 0;   ///< size of the coalesced batch (kOk)
  double queue_wait_us = 0.0;   ///< admission -> batcher pop
  bool ok() const { return status == DecideStatus::kOk; }
};

/// Monotonic counters since construction (snapshot under the queue lock).
struct ServeStats {
  std::uint64_t admitted = 0;   ///< requests accepted into the queue
  std::uint64_t served = 0;     ///< completed kOk
  std::uint64_t shed = 0;       ///< refused kOverloaded at admission
  std::uint64_t expired = 0;    ///< completed kDeadlineExceeded
  std::uint64_t rejected = 0;   ///< refused kShutdown / kBadRequest
  std::uint64_t batches = 0;    ///< forward passes run
  std::size_t max_batch_rows = 0;   ///< deepest batch observed
  std::size_t max_queue_depth = 0;  ///< deepest queue observed
};

class InferenceEngine {
 public:
  /// Non-owning: `policy` must outlive the engine. Spawns the batcher
  /// thread immediately.
  InferenceEngine(BatchPolicy& policy, ServeConfig config);

  /// stop()s and joins the batcher.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  const ServeConfig& config() const { return config_; }
  std::size_t state_dim() const { return policy_.state_dim(); }
  std::size_t action_dim() const { return policy_.action_dim(); }

  /// Blocking decide: admits the request (or refuses immediately) and
  /// waits until the batcher completes it. `deadline_us` < 0 uses the
  /// config default; 0 disables the deadline for this request.
  DecideResult decide(std::span<const double> state,
                      double deadline_us = -1.0);

  /// Capacity-reusing overload: `out.action`'s buffer is recycled for the
  /// result, so a caller looping decide() performs zero heap allocations
  /// per call in steady state.
  void decide(std::span<const double> state, DecideResult& out,
              double deadline_us = -1.0);

  /// Refuses new work, serves everything already admitted, then stops the
  /// batcher. Idempotent; also run by the destructor.
  void stop();

  bool accepting() const;
  /// Queued-but-unserved requests right now (racy by nature).
  std::size_t queue_depth() const;
  ServeStats stats() const;

 private:
  struct Request;
  void batcher_loop();
  void complete(Request* req);

  BatchPolicy& policy_;
  ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Request*> queue_;
  bool accepting_ = true;
  bool draining_ = false;
  ServeStats stats_;

  // Completion wakeups are SHARDED: consecutive admissions (ticket /
  // max_batch) share a shard, the batcher publishes a whole batch with one
  // notify_all per distinct shard (a batch spans at most two tickets'
  // worth of FIFO pops) instead of one futex syscall per request. On a
  // small machine those per-request wakes were the dominant per-decide
  // cost of the batched path.
  struct CompletionShard {
    std::mutex m;
    std::condition_variable cv;
  };
  static constexpr std::size_t kCompletionShards = 4;
  std::array<CompletionShard, kCompletionShards> shards_;

  // Batcher-owned scratch (touched only by the batcher thread): request
  // rows are gathered here so the steady state performs zero tensor-heap
  // allocations once capacities cover max_batch.
  Matrix batch_states_;
  Matrix batch_actions_;
  std::vector<Request*> batch_;
  std::vector<Request*> expired_;  ///< deadline-blown pops, completed
                                   ///< after the queue lock is released

  std::size_t live_status_id_ = 0;  ///< /statusz "serve" source handle

  std::thread batcher_;  ///< last member: starts after everything above
};

}  // namespace fedra::serve
