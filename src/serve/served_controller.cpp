#include "serve/served_controller.hpp"

#include <utility>

#include "obs/ledger.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contracts.hpp"

namespace fedra::serve {

ServedDrlController::ServedDrlController(SessionManager& sessions,
                                         FlEnvConfig env_config,
                                         double bandwidth_ref,
                                         const SessionConfig& session_config)
    : sessions_(sessions),
      session_id_(sessions.open(session_config)),
      env_config_(env_config),
      bandwidth_ref_(bandwidth_ref) {
  FEDRA_EXPECTS(bandwidth_ref > 0.0);
}

ServedDrlController::~ServedDrlController() {
  sessions_.close(session_id_);
}

std::vector<double> ServedDrlController::decide(const SimulatorBase& sim) {
  namespace tel = fedra::telemetry;
  tel::Histogram decide_hist;
  FEDRA_TELEMETRY_IF {
    static const auto h =
        tel::Telemetry::metrics().histogram("serve.ctl.decide_us");
    decide_hist = h;
  }
  tel::ScopedTimer timer(decide_hist);
  const auto state = bandwidth_history_state(
      sim, sim.now(), env_config_, bandwidth_ref_,
      last_result_ ? &*last_result_ : nullptr);

  DecideResult res = sessions_.decide(session_id_, state);
  last_status_ = res.status;
  std::vector<double> freqs(sim.num_devices());
  if (res.ok()) {
    FEDRA_ENSURES(res.action.size() == sim.num_devices());
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      freqs[i] = res.action[i] * sim.fleet().max_freq_hz(i);
    }
    last_freqs_ = freqs;
  } else {
    // Degrade, don't block: reuse the previous decision, or run every
    // device flat-out before the first one (always feasible).
    ++fallbacks_;
    if (last_freqs_.size() == freqs.size()) {
      freqs = last_freqs_;
    } else {
      for (std::size_t i = 0; i < freqs.size(); ++i) {
        freqs[i] = sim.fleet().max_freq_hz(i);
      }
      last_freqs_ = freqs;
    }
  }

  FEDRA_TELEMETRY_IF {
    if (obs::RunLedger::enabled()) {
      pending_.valid = true;
      if (obs::RunLedger::config().log_state) {
        pending_.state = state;
      } else {
        pending_.state.clear();
      }
      pending_.freqs_hz = freqs;
      const IterationResult predicted = sim.preview(freqs, StepOptions{});
      pending_.predicted_time = predicted.iteration_time;
      pending_.predicted_energy = predicted.total_energy;
      pending_.predicted_cost = predicted.cost;
    }
  }
  return freqs;
}

void ServedDrlController::observe(const IterationResult& result) {
  if (env_config_.fault_aware_state) last_result_ = result;
  if (pending_.valid) {
    pending_.valid = false;
    FEDRA_TELEMETRY_IF {
      if (obs::RunLedger::enabled()) {
        obs::DecisionRecord decision;
        decision.round = decision_round_;
        decision.source = "serve";
        decision.state = std::move(pending_.state);
        decision.action = std::move(pending_.freqs_hz);
        decision.predicted_time = pending_.predicted_time;
        decision.predicted_energy = pending_.predicted_energy;
        decision.predicted_cost = pending_.predicted_cost;
        decision.realized_time = result.iteration_time;
        decision.realized_energy = result.total_energy;
        decision.realized_cost = result.cost;
        decision.reward = result.reward;
        obs::RunLedger::record_decision(decision);
      }
    }
  }
  ++decision_round_;
}

}  // namespace fedra::serve
