// DrlController's served variant: the same online-reasoning contract
// (build the bandwidth-history state, ask the actor for the mean action,
// scale to Hz), but the actor lives behind a shared InferenceEngine —
// many federations' controllers multiplex one policy, and their decide()
// calls coalesce into batched forward passes.
//
// Backpressure contract: decide() must always return usable frequencies.
// When the engine sheds (kOverloaded), expires the request
// (kDeadlineExceeded), or is shutting down, the controller degrades to
// its previous decision (or every device's max frequency before any
// decision) and counts the fallback — the federation keeps stepping at a
// stale-but-valid operating point instead of blocking on an overloaded
// controller tier. Per-row bit-exactness of the engine makes the served
// controller's kOk decisions bit-identical to an in-process
// DrlController over the same agent (tests/test_serve.cpp pins this).
#pragma once

#include <cstdint>
#include <optional>

#include "env/fl_env.hpp"
#include "sched/controller.hpp"
#include "serve/session.hpp"

namespace fedra::serve {

class ServedDrlController final : public Controller {
 public:
  /// Opens a session on `sessions` (closed by the destructor).
  /// `env_config` / `bandwidth_ref` must match the served agent's
  /// training-time configuration, exactly as for DrlController.
  ServedDrlController(SessionManager& sessions, FlEnvConfig env_config,
                      double bandwidth_ref,
                      const SessionConfig& session_config = {});
  ~ServedDrlController() override;

  ServedDrlController(const ServedDrlController&) = delete;
  ServedDrlController& operator=(const ServedDrlController&) = delete;

  std::vector<double> decide(const SimulatorBase& sim) override;
  void observe(const IterationResult& result) override;
  std::string name() const override { return "drl-serve"; }

  std::uint64_t session_id() const { return session_id_; }
  DecideStatus last_status() const { return last_status_; }
  /// decide() calls answered by the fallback instead of the engine.
  std::uint64_t fallbacks() const { return fallbacks_; }

 private:
  SessionManager& sessions_;
  std::uint64_t session_id_ = 0;
  FlEnvConfig env_config_;
  double bandwidth_ref_;
  std::optional<IterationResult> last_result_;
  std::vector<double> last_freqs_;  ///< backpressure fallback
  DecideStatus last_status_ = DecideStatus::kOk;
  std::uint64_t fallbacks_ = 0;

  // Run-ledger decision records (source "serve"), mirroring
  // DrlController's pending/observe pairing.
  struct PendingDecision {
    bool valid = false;
    std::vector<double> state;
    std::vector<double> freqs_hz;
    double predicted_time = 0.0;
    double predicted_energy = 0.0;
    double predicted_cost = 0.0;
  };
  PendingDecision pending_;
  std::size_t decision_round_ = 0;
};

}  // namespace fedra::serve
