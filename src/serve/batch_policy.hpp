// Policy abstraction the serving engine batches over.
//
// The engine coalesces N concurrent decide() states into one N x S matrix
// and asks the policy for N deterministic actions in a single forward
// pass. The contract that makes serving correct:
//
//   * PER-ROW BIT-EXACTNESS: row b of the batched output must be
//     bit-identical to running states.row(b) alone. Every fedra tensor
//     kernel sums in ascending-k order per output row, so a row's bits
//     never depend on which other rows share the batch — which is what
//     lets the batcher coalesce arbitrary concurrent requests without
//     changing any caller-visible result.
//   * SINGLE-CALLER: mean_action_batch is NOT thread-safe (persistent
//     inference workspaces). The engine's batcher thread is the one
//     caller; tests may call it directly when no engine is running.
#pragma once

#include <cstddef>

#include "rl/ppo.hpp"
#include "tensor/matrix.hpp"

namespace fedra::serve {

class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;

  virtual std::size_t state_dim() const = 0;
  virtual std::size_t action_dim() const = 0;

  /// Writes the deterministic action for states.row(b) into actions.row(b)
  /// (actions is resized by the callee with capacity reuse).
  virtual void mean_action_batch(const Matrix& states, Matrix& actions) = 0;
};

/// Serves a GaussianPolicy's deterministic mean (non-owning).
class GaussianMeanPolicy final : public BatchPolicy {
 public:
  explicit GaussianMeanPolicy(GaussianPolicy& policy) : policy_(policy) {}

  std::size_t state_dim() const override { return policy_.state_dim(); }
  std::size_t action_dim() const override { return policy_.action_dim(); }
  void mean_action_batch(const Matrix& states, Matrix& actions) override {
    policy_.mean_action_batch(states, actions);
  }

 private:
  GaussianPolicy& policy_;
};

/// Serves a trained PPO agent's online policy theta_a (non-owning).
class PpoMeanPolicy final : public BatchPolicy {
 public:
  explicit PpoMeanPolicy(PpoAgent& agent) : agent_(agent) {}

  std::size_t state_dim() const override {
    return agent_.policy().state_dim();
  }
  std::size_t action_dim() const override {
    return agent_.policy().action_dim();
  }
  void mean_action_batch(const Matrix& states, Matrix& actions) override {
    agent_.mean_action_batch(states, actions);
  }

 private:
  PpoAgent& agent_;
};

}  // namespace fedra::serve
