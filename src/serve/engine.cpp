#include "serve/engine.hpp"

#include <algorithm>
#include <cstdio>

#include "live/status.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contracts.hpp"

namespace fedra::serve {

namespace {
using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}
}  // namespace

const char* to_string(DecideStatus status) {
  switch (status) {
    case DecideStatus::kOk:
      return "ok";
    case DecideStatus::kOverloaded:
      return "overloaded";
    case DecideStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case DecideStatus::kShutdown:
      return "shutdown";
    case DecideStatus::kBadRequest:
      return "bad_request";
  }
  return "unknown";
}

// Stack-owned by the blocked client thread: the batcher is guaranteed to
// complete every admitted request (drain-on-stop), and the client never
// returns before `done`, so the node cannot dangle.
//
// Completion is published under the request's completion SHARD, never the
// engine mutex: with one shared lock, finishing a 64-row batch serializes
// 64 client wakeups through it (each waking client reacquires the engine
// mutex, racing the clients already re-enqueueing) — measured, that convoy
// capped the batched path below 3x. Lock ordering: the batcher only takes
// a shard mutex after releasing mu_; clients never hold both.
struct InferenceEngine::Request {
  std::span<const double> state;
  Clock::time_point enqueued;
  double deadline_us = 0.0;   ///< 0 = none
  std::size_t shard = 0;      ///< completion shard, assigned at admission
  bool done = false;          ///< guarded by shards_[shard].m
  DecideStatus status = DecideStatus::kOk;
  std::vector<double> action;
  std::size_t batch_rows = 0;
  double queue_wait_us = 0.0;
  /// Client thread's trace context at admission: the batcher emits this
  /// request's serve.infer span under it, so one trace id follows the
  /// request decide() -> queue -> batched forward -> completion.
  live::TraceContext trace;
};

InferenceEngine::InferenceEngine(BatchPolicy& policy, ServeConfig config)
    : policy_(policy), config_(config) {
  FEDRA_EXPECTS(config_.max_batch > 0);
  FEDRA_EXPECTS(config_.max_queue_depth > 0);
  batch_.reserve(config_.max_batch);
  // /statusz "serve" source: queue depth + admission/deadline counters.
  // Unregistered first thing in the destructor (the registry mutex is
  // held across callback invocation, so no scrape can race teardown).
  live_status_id_ = live::register_status_source(
      "serve", [this](std::string& out) {
        ServeStats s;
        std::size_t depth = 0;
        {
          std::lock_guard lock(mu_);
          s = stats_;
          depth = queue_.size();
        }
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "{\"queue_depth\":%zu,\"admitted\":%llu,\"served\":%llu,"
            "\"shed\":%llu,\"expired\":%llu,\"rejected\":%llu,"
            "\"batches\":%llu,\"max_batch_rows\":%zu,"
            "\"max_queue_depth\":%zu}",
            depth, static_cast<unsigned long long>(s.admitted),
            static_cast<unsigned long long>(s.served),
            static_cast<unsigned long long>(s.shed),
            static_cast<unsigned long long>(s.expired),
            static_cast<unsigned long long>(s.rejected),
            static_cast<unsigned long long>(s.batches), s.max_batch_rows,
            s.max_queue_depth);
        out += buf;
      });
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceEngine::~InferenceEngine() {
  live::unregister_status_source(live_status_id_);
  stop();
}

DecideResult InferenceEngine::decide(std::span<const double> state,
                                     double deadline_us) {
  DecideResult out;
  decide(state, out, deadline_us);
  return out;
}

void InferenceEngine::decide(std::span<const double> state, DecideResult& out,
                             double deadline_us) {
  // The request's root span: covers admission, the queue wait, and the
  // wakeup. Opening it first means req.trace (captured below) carries
  // this span as parent — the batcher's serve.infer span attaches there.
  telemetry::TraceSpan decide_span("serve.decide");
  out.batch_rows = 0;
  out.queue_wait_us = 0.0;
  Request req;
  req.trace = live::current_trace_context();
  req.action = std::move(out.action);  // recycle the caller's buffer
  req.action.clear();
  if (state.size() != policy_.state_dim()) {
    std::lock_guard lock(mu_);
    ++stats_.rejected;
    out.status = DecideStatus::kBadRequest;
    out.action = std::move(req.action);
    return;
  }
  req.state = state;
  req.deadline_us =
      deadline_us < 0.0 ? config_.default_deadline_us : deadline_us;

  std::unique_lock lock(mu_);
  if (!accepting_) {
    ++stats_.rejected;
    lock.unlock();
    out.status = DecideStatus::kShutdown;
    out.action = std::move(req.action);
    return;
  }
  if (queue_.size() >= config_.max_queue_depth) {
    ++stats_.shed;
    lock.unlock();
    FEDRA_TELEMETRY_IF {
      static auto shed =
          telemetry::Telemetry::metrics().counter("serve.shed");
      shed.add();
    }
    out.status = DecideStatus::kOverloaded;
    out.action = std::move(req.action);
    return;
  }
  req.shard = static_cast<std::size_t>(stats_.admitted / config_.max_batch) %
              kCompletionShards;
  req.enqueued = Clock::now();
  queue_.push_back(&req);
  ++stats_.admitted;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  const std::size_t depth = queue_.size();
  lock.unlock();
  // The batcher only sleeps when the queue is empty (depth 1 wakes it) or
  // inside the batching window (a full batch cuts the window short); any
  // other notify would be a wasted syscall on the hot path.
  if (depth == 1 || depth >= config_.max_batch) work_cv_.notify_one();

  {
    auto& shard = shards_[req.shard];
    std::unique_lock shard_lock(shard.m);
    shard.cv.wait(shard_lock, [&] { return req.done; });
  }

  out.status = req.status;
  out.action = std::move(req.action);
  out.batch_rows = req.batch_rows;
  out.queue_wait_us = req.queue_wait_us;
}

void InferenceEngine::stop() {
  {
    std::lock_guard lock(mu_);
    if (draining_ && !batcher_.joinable()) return;
    accepting_ = false;
    draining_ = true;
  }
  work_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

bool InferenceEngine::accepting() const {
  std::lock_guard lock(mu_);
  return accepting_;
}

std::size_t InferenceEngine::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

ServeStats InferenceEngine::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

// Completes one request outside any batch (deadline-expired pops). Must
// NOT hold mu_: the woken client may immediately re-enter decide().
void InferenceEngine::complete(Request* req) {
  auto& shard = shards_[req->shard];
  {
    std::lock_guard shard_lock(shard.m);
    req->done = true;
  }
  shard.cv.notify_all();
}

void InferenceEngine::batcher_loop() {
  namespace tel = fedra::telemetry;
  for (;;) {
    std::unique_lock lock(mu_);
    work_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }
    if (config_.batch_window_us > 0.0 && !draining_ &&
        queue_.size() < config_.max_batch) {
      work_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::micro>(config_.batch_window_us),
          [&] { return queue_.size() >= config_.max_batch || draining_; });
    }
    const auto popped_at = Clock::now();
    batch_.clear();
    expired_.clear();
    while (!queue_.empty() && batch_.size() < config_.max_batch) {
      Request* req = queue_.front();
      queue_.pop_front();
      req->queue_wait_us = us_between(req->enqueued, popped_at);
      if (req->deadline_us > 0.0 && req->queue_wait_us > req->deadline_us) {
        // Typed backpressure: the wait already blew the budget, so answer
        // now instead of spending a batch row on a stale decision.
        // Completed after the unlock like every other request.
        req->status = DecideStatus::kDeadlineExceeded;
        expired_.push_back(req);
        ++stats_.expired;
        continue;
      }
      batch_.push_back(req);
    }
    const std::size_t depth_after = queue_.size();
    lock.unlock();

    for (Request* req : expired_) complete(req);
    FEDRA_TELEMETRY_IF {
      static auto expired =
          tel::Telemetry::metrics().counter("serve.expired");
      if (!expired_.empty()) expired.add(expired_.size());
    }
    if (batch_.empty()) continue;

    // Gather rows and run ONE forward pass. Requests are completed from
    // row b of the batched output — bit-identical to serving each alone
    // (BatchPolicy's per-row contract).
    const std::size_t rows = batch_.size();
    batch_states_.resize_reuse(rows, policy_.state_dim());
    for (std::size_t b = 0; b < rows; ++b) {
      auto dst = batch_states_.row(b);
      std::copy(batch_[b]->state.begin(), batch_[b]->state.end(),
                dst.begin());
    }
    batch_actions_.resize_reuse(rows, policy_.action_dim());
    const bool tel_on = telemetry::Telemetry::enabled();
    const bool rec_on = live::flight_recorder_enabled();
    const double fwd_t0 = (tel_on || rec_on) ? telemetry::now_us() : 0.0;
    policy_.mean_action_batch(batch_states_, batch_actions_);
    const double fwd_dur =
        (tel_on || rec_on) ? telemetry::now_us() - fwd_t0 : 0.0;
    live::watchdog_kick();

    // Telemetry first: once a request is completed below, its owner may
    // return and the stack node is gone. One serve.infer span per row,
    // emitted under the REQUEST's trace context — this is how a request
    // keeps one trace id across the client thread and the batcher thread.
    if (tel_on || rec_on) {
      for (std::size_t b = 0; b < rows; ++b) {
        Request* req = batch_[b];
        live::ScopedTraceContext request_ctx(req->trace);
        if (rec_on) {
          live::record_flight("serve.infer", fwd_t0, fwd_dur,
                              live::FlightKind::kSpan, rows);
        }
        if (tel_on) {
          telemetry::SpanRecord span;
          span.name = "serve.infer";
          span.start_us = fwd_t0;
          span.dur_us = fwd_dur;
          span.tid = telemetry::current_thread_id();
          span.trace_id = req->trace.trace_id;
          span.parent_span_id = req->trace.span_id;
          span.span_id = live::next_trace_id();
          telemetry::Telemetry::spans().push(span);
        }
      }
      if (tel_on) {
        static auto infer_hist =
            tel::Telemetry::metrics().histogram("serve.infer");
        infer_hist.record(fwd_dur);
      }
    }
    FEDRA_TELEMETRY_IF {
      static auto served =
          tel::Telemetry::metrics().counter("serve.served");
      static auto batch_hist =
          tel::Telemetry::metrics().histogram("serve.batch_rows");
      static auto depth_hist =
          tel::Telemetry::metrics().histogram("serve.queue_depth");
      static auto wait_hist =
          tel::Telemetry::metrics().histogram("serve.queue_wait_us");
      served.add(rows);
      batch_hist.record(static_cast<double>(rows));
      depth_hist.record(static_cast<double>(depth_after));
      for (std::size_t b = 0; b < rows; ++b) {
        wait_hist.record(batch_[b]->queue_wait_us);
      }
    }

    for (std::size_t b = 0; b < rows; ++b) {
      Request* req = batch_[b];
      auto row = batch_actions_.row(b);
      req->action.assign(row.begin(), row.end());
      req->batch_rows = rows;
      req->status = DecideStatus::kOk;
    }
    // Count the batch BEFORE publishing completions: once a client wakes
    // it has a completed decide() in hand, so stats().served must already
    // reflect it (tests read stats right after their last decide returns).
    lock.lock();
    stats_.served += rows;
    ++stats_.batches;
    stats_.max_batch_rows = std::max(stats_.max_batch_rows, rows);
    lock.unlock();

    // Publish per shard run (FIFO pops keep a batch's shards contiguous,
    // so this is at most a couple of lock+notify_all rounds per batch).
    // After a request is marked done its owner may return and the stack
    // node is gone — batch_ pointers must not be dereferenced afterwards.
    std::size_t b = 0;
    while (b < rows) {
      const std::size_t shard = batch_[b]->shard;
      std::size_t e = b;
      {
        std::lock_guard shard_lock(shards_[shard].m);
        for (; e < rows && batch_[e]->shard == shard; ++e) {
          batch_[e]->done = true;
        }
      }
      shards_[shard].cv.notify_all();
      b = e;
    }
  }
}

}  // namespace fedra::serve
