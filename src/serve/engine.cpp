#include "serve/engine.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/contracts.hpp"

namespace fedra::serve {

namespace {
using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}
}  // namespace

const char* to_string(DecideStatus status) {
  switch (status) {
    case DecideStatus::kOk:
      return "ok";
    case DecideStatus::kOverloaded:
      return "overloaded";
    case DecideStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case DecideStatus::kShutdown:
      return "shutdown";
    case DecideStatus::kBadRequest:
      return "bad_request";
  }
  return "unknown";
}

// Stack-owned by the blocked client thread: the batcher is guaranteed to
// complete every admitted request (drain-on-stop), and the client never
// returns before `done`, so the node cannot dangle.
//
// Completion is published under the request's completion SHARD, never the
// engine mutex: with one shared lock, finishing a 64-row batch serializes
// 64 client wakeups through it (each waking client reacquires the engine
// mutex, racing the clients already re-enqueueing) — measured, that convoy
// capped the batched path below 3x. Lock ordering: the batcher only takes
// a shard mutex after releasing mu_; clients never hold both.
struct InferenceEngine::Request {
  std::span<const double> state;
  Clock::time_point enqueued;
  double deadline_us = 0.0;   ///< 0 = none
  std::size_t shard = 0;      ///< completion shard, assigned at admission
  bool done = false;          ///< guarded by shards_[shard].m
  DecideStatus status = DecideStatus::kOk;
  std::vector<double> action;
  std::size_t batch_rows = 0;
  double queue_wait_us = 0.0;
};

InferenceEngine::InferenceEngine(BatchPolicy& policy, ServeConfig config)
    : policy_(policy), config_(config) {
  FEDRA_EXPECTS(config_.max_batch > 0);
  FEDRA_EXPECTS(config_.max_queue_depth > 0);
  batch_.reserve(config_.max_batch);
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceEngine::~InferenceEngine() { stop(); }

DecideResult InferenceEngine::decide(std::span<const double> state,
                                     double deadline_us) {
  DecideResult out;
  decide(state, out, deadline_us);
  return out;
}

void InferenceEngine::decide(std::span<const double> state, DecideResult& out,
                             double deadline_us) {
  out.batch_rows = 0;
  out.queue_wait_us = 0.0;
  Request req;
  req.action = std::move(out.action);  // recycle the caller's buffer
  req.action.clear();
  if (state.size() != policy_.state_dim()) {
    std::lock_guard lock(mu_);
    ++stats_.rejected;
    out.status = DecideStatus::kBadRequest;
    out.action = std::move(req.action);
    return;
  }
  req.state = state;
  req.deadline_us =
      deadline_us < 0.0 ? config_.default_deadline_us : deadline_us;

  std::unique_lock lock(mu_);
  if (!accepting_) {
    ++stats_.rejected;
    lock.unlock();
    out.status = DecideStatus::kShutdown;
    out.action = std::move(req.action);
    return;
  }
  if (queue_.size() >= config_.max_queue_depth) {
    ++stats_.shed;
    lock.unlock();
    FEDRA_TELEMETRY_IF {
      static auto shed =
          telemetry::Telemetry::metrics().counter("serve.shed");
      shed.add();
    }
    out.status = DecideStatus::kOverloaded;
    out.action = std::move(req.action);
    return;
  }
  req.shard = static_cast<std::size_t>(stats_.admitted / config_.max_batch) %
              kCompletionShards;
  req.enqueued = Clock::now();
  queue_.push_back(&req);
  ++stats_.admitted;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  const std::size_t depth = queue_.size();
  lock.unlock();
  // The batcher only sleeps when the queue is empty (depth 1 wakes it) or
  // inside the batching window (a full batch cuts the window short); any
  // other notify would be a wasted syscall on the hot path.
  if (depth == 1 || depth >= config_.max_batch) work_cv_.notify_one();

  {
    auto& shard = shards_[req.shard];
    std::unique_lock shard_lock(shard.m);
    shard.cv.wait(shard_lock, [&] { return req.done; });
  }

  out.status = req.status;
  out.action = std::move(req.action);
  out.batch_rows = req.batch_rows;
  out.queue_wait_us = req.queue_wait_us;
}

void InferenceEngine::stop() {
  {
    std::lock_guard lock(mu_);
    if (draining_ && !batcher_.joinable()) return;
    accepting_ = false;
    draining_ = true;
  }
  work_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

bool InferenceEngine::accepting() const {
  std::lock_guard lock(mu_);
  return accepting_;
}

std::size_t InferenceEngine::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

ServeStats InferenceEngine::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

// Completes one request outside any batch (deadline-expired pops). Must
// NOT hold mu_: the woken client may immediately re-enter decide().
void InferenceEngine::complete(Request* req) {
  auto& shard = shards_[req->shard];
  {
    std::lock_guard shard_lock(shard.m);
    req->done = true;
  }
  shard.cv.notify_all();
}

void InferenceEngine::batcher_loop() {
  namespace tel = fedra::telemetry;
  for (;;) {
    std::unique_lock lock(mu_);
    work_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }
    if (config_.batch_window_us > 0.0 && !draining_ &&
        queue_.size() < config_.max_batch) {
      work_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::micro>(config_.batch_window_us),
          [&] { return queue_.size() >= config_.max_batch || draining_; });
    }
    const auto popped_at = Clock::now();
    batch_.clear();
    expired_.clear();
    while (!queue_.empty() && batch_.size() < config_.max_batch) {
      Request* req = queue_.front();
      queue_.pop_front();
      req->queue_wait_us = us_between(req->enqueued, popped_at);
      if (req->deadline_us > 0.0 && req->queue_wait_us > req->deadline_us) {
        // Typed backpressure: the wait already blew the budget, so answer
        // now instead of spending a batch row on a stale decision.
        // Completed after the unlock like every other request.
        req->status = DecideStatus::kDeadlineExceeded;
        expired_.push_back(req);
        ++stats_.expired;
        continue;
      }
      batch_.push_back(req);
    }
    const std::size_t depth_after = queue_.size();
    lock.unlock();

    for (Request* req : expired_) complete(req);
    FEDRA_TELEMETRY_IF {
      static auto expired =
          tel::Telemetry::metrics().counter("serve.expired");
      if (!expired_.empty()) expired.add(expired_.size());
    }
    if (batch_.empty()) continue;

    // Gather rows and run ONE forward pass. Requests are completed from
    // row b of the batched output — bit-identical to serving each alone
    // (BatchPolicy's per-row contract).
    const std::size_t rows = batch_.size();
    batch_states_.resize_reuse(rows, policy_.state_dim());
    for (std::size_t b = 0; b < rows; ++b) {
      auto dst = batch_states_.row(b);
      std::copy(batch_[b]->state.begin(), batch_[b]->state.end(),
                dst.begin());
    }
    batch_actions_.resize_reuse(rows, policy_.action_dim());
    policy_.mean_action_batch(batch_states_, batch_actions_);

    // Telemetry first: once a request is completed below, its owner may
    // return and the stack node is gone.
    FEDRA_TELEMETRY_IF {
      static auto served =
          tel::Telemetry::metrics().counter("serve.served");
      static auto batch_hist =
          tel::Telemetry::metrics().histogram("serve.batch_rows");
      static auto depth_hist =
          tel::Telemetry::metrics().histogram("serve.queue_depth");
      static auto wait_hist =
          tel::Telemetry::metrics().histogram("serve.queue_wait_us");
      served.add(rows);
      batch_hist.record(static_cast<double>(rows));
      depth_hist.record(static_cast<double>(depth_after));
      for (std::size_t b = 0; b < rows; ++b) {
        wait_hist.record(batch_[b]->queue_wait_us);
      }
    }

    for (std::size_t b = 0; b < rows; ++b) {
      Request* req = batch_[b];
      auto row = batch_actions_.row(b);
      req->action.assign(row.begin(), row.end());
      req->batch_rows = rows;
      req->status = DecideStatus::kOk;
    }
    // Count the batch BEFORE publishing completions: once a client wakes
    // it has a completed decide() in hand, so stats().served must already
    // reflect it (tests read stats right after their last decide returns).
    lock.lock();
    stats_.served += rows;
    ++stats_.batches;
    stats_.max_batch_rows = std::max(stats_.max_batch_rows, rows);
    lock.unlock();

    // Publish per shard run (FIFO pops keep a batch's shards contiguous,
    // so this is at most a couple of lock+notify_all rounds per batch).
    // After a request is marked done its owner may return and the stack
    // node is gone — batch_ pointers must not be dereferenced afterwards.
    std::size_t b = 0;
    while (b < rows) {
      const std::size_t shard = batch_[b]->shard;
      std::size_t e = b;
      {
        std::lock_guard shard_lock(shards_[shard].m);
        for (; e < rows && batch_[e]->shard == shard; ++e) {
          batch_[e]->done = true;
        }
      }
      shards_[shard].cv.notify_all();
      b = e;
    }
  }
}

}  // namespace fedra::serve
