// Time series of uplink bandwidth for one mobile device.
//
// A trace is a sequence of samples at fixed resolution dt: sample j is the
// bandwidth (bytes/second) held constant over [j*dt, (j+1)*dt). Traces are
// treated as PERIODIC — simulations routinely run longer than a measured
// trace, and the paper's evaluation likewise loops trace segments.
//
// The key query is upload_finish_time(): Eq. (3) of the paper defines the
// per-iteration bandwidth B_i^k as the average realized speed over the
// upload interval, i.e. the upload of xi bytes starting at t finishes at
// the first t' with integral_t^t' B(u) du = xi. A prefix-sum integral makes
// that an O(log n) query (binary search + linear interpolation inside one
// sample).
#pragma once

#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace fedra {

class BandwidthTrace {
 public:
  BandwidthTrace() = default;

  /// `samples` are bandwidths in bytes/second, one per `dt`-second bin.
  BandwidthTrace(std::vector<double> samples, double dt);

  std::size_t num_samples() const { return samples_.size(); }
  double resolution() const { return dt_; }
  /// One period of the trace, in seconds.
  double duration() const { return static_cast<double>(samples_.size()) * dt_; }
  const std::vector<double>& samples() const { return samples_; }

  /// Instantaneous bandwidth at absolute time t >= 0 (periodic extension).
  double bandwidth_at(double t) const;

  /// Bytes transferable over [0, t] (periodic extension), t >= 0.
  double cumulative_bytes(double t) const;

  /// Average bandwidth over [t0, t1], t1 > t0 — this is B_i^k of Eq. (3)
  /// when [t0, t1] is the realized upload interval.
  double average_bandwidth(double t0, double t1) const;

  /// First time t' >= start such that `bytes` have been transferred since
  /// `start`; i.e. the upload completion time. Requires a trace whose mean
  /// bandwidth is positive (guaranteed at construction).
  double upload_finish_time(double start, double bytes) const;

  /// Batched form: out[k] = upload_finish_time(starts[k], bytes) for
  /// k in [0, n), bit-identical to the scalar calls but solved in
  /// interleaved lockstep batches (see the free upload_finish_times).
  void upload_finish_times(const double* starts, std::size_t n, double bytes,
                           double* out) const;

  /// Prefix integral: prefix_bytes()[j] = bytes transferable over the
  /// first j samples of one period (size num_samples() + 1). Exposed for
  /// the batched fleet pricing kernels.
  const std::vector<double>& prefix_bytes() const { return prefix_; }

  /// Upload duration (finish - start) for `bytes` starting at `start`.
  double upload_duration(double start, double bytes) const {
    return upload_finish_time(start, bytes) - start;
  }

  /// Average bandwidth over slot j of width h seconds: mean of B over
  /// [j*h, (j+1)*h). Negative j wraps periodically — this is how the DRL
  /// state looks "back" before the episode start (paper Section IV-B1).
  double slot_average(long long slot, double h) const;

  /// Mean bandwidth over one period.
  double mean_bandwidth() const;
  double min_bandwidth() const;
  double max_bandwidth() const;

 private:
  /// Bytes transferable in [0, t] for t within a single period.
  double cumulative_in_period(double t) const;

  std::vector<double> samples_;
  std::vector<double> prefix_;  // prefix_[j] = bytes over first j samples
  double dt_ = 1.0;
};

/// Batched Eq. (3) solve across (possibly distinct) traces:
/// out[k] = traces[k]->upload_finish_time(starts[k], bytes), bit-identical
/// to the scalar calls. Lanes whose traces share a sample count run their
/// per-period binary searches in lockstep (a branchless lower_bound with
/// one trip count for the whole batch, so 8 independent search chains keep
/// the core busy instead of serializing on cache latency); mixed batches
/// fall back to per-lane scalar solves.
void upload_finish_times(const BandwidthTrace* const* traces,
                         const double* starts, std::size_t n, double bytes,
                         double* out);

}  // namespace fedra
