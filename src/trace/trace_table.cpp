#include "trace/trace_table.hpp"

#include <algorithm>
#include <limits>

namespace fedra {

TraceTable::TraceTable(std::vector<BandwidthTrace> traces)
    : pool_(std::move(traces)) {
  FEDRA_EXPECTS(pool_.size() <=
                std::numeric_limits<std::uint32_t>::max());
  assignment_.resize(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    assignment_[i] = static_cast<std::uint32_t>(i);
  }
}

TraceTable::TraceTable(std::vector<BandwidthTrace> pool,
                       std::vector<std::uint32_t> assignment)
    : pool_(std::move(pool)), assignment_(std::move(assignment)) {
  FEDRA_EXPECTS(!pool_.empty() || assignment_.empty());
  for (const std::uint32_t id : assignment_) {
    FEDRA_EXPECTS(id < pool_.size());
  }
}

std::vector<BandwidthTrace> TraceTable::materialize() const {
  std::vector<BandwidthTrace> out;
  out.reserve(assignment_.size());
  for (const std::uint32_t id : assignment_) out.push_back(pool_[id]);
  return out;
}

void TraceTable::upload_finish_times(const std::size_t* devices,
                                     std::size_t count, const double* starts,
                                     double bytes, double* out) const {
  constexpr std::size_t kChunk = 64;
  const BandwidthTrace* traces[kChunk];
  std::size_t k = 0;
  while (k < count) {
    const std::size_t batch = std::min(kChunk, count - k);
    for (std::size_t l = 0; l < batch; ++l) {
      traces[l] = &(*this)[devices[k + l]];
    }
    fedra::upload_finish_times(traces, starts + k, batch, bytes, out + k);
    k += batch;
  }
}

}  // namespace fedra
