#include "trace/transforms.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace fedra {

BandwidthTrace scale_trace(const BandwidthTrace& trace, double factor) {
  FEDRA_EXPECTS(factor > 0.0);
  std::vector<double> samples = trace.samples();
  for (auto& s : samples) s *= factor;
  return BandwidthTrace(std::move(samples), trace.resolution());
}

BandwidthTrace concat_traces(const std::vector<BandwidthTrace>& traces) {
  FEDRA_EXPECTS(!traces.empty());
  const double dt = traces.front().resolution();
  std::vector<double> samples;
  for (const auto& t : traces) {
    FEDRA_EXPECTS(t.resolution() == dt);
    samples.insert(samples.end(), t.samples().begin(), t.samples().end());
  }
  return BandwidthTrace(std::move(samples), dt);
}

BandwidthTrace slice_trace(const BandwidthTrace& trace, std::size_t first,
                           std::size_t count) {
  FEDRA_EXPECTS(count > 0);
  FEDRA_EXPECTS(first + count <= trace.num_samples());
  std::vector<double> samples(
      trace.samples().begin() + static_cast<std::ptrdiff_t>(first),
      trace.samples().begin() + static_cast<std::ptrdiff_t>(first + count));
  return BandwidthTrace(std::move(samples), trace.resolution());
}

BandwidthTrace blend_traces(const BandwidthTrace& a, const BandwidthTrace& b,
                            double w) {
  FEDRA_EXPECTS(w >= 0.0 && w <= 1.0);
  FEDRA_EXPECTS(a.resolution() == b.resolution());
  FEDRA_EXPECTS(a.num_samples() == b.num_samples());
  std::vector<double> samples(a.num_samples());
  for (std::size_t j = 0; j < samples.size(); ++j) {
    samples[j] = (1.0 - w) * a.samples()[j] + w * b.samples()[j];
  }
  return BandwidthTrace(std::move(samples), a.resolution());
}

BandwidthTrace step_trace(
    const std::vector<std::pair<double, double>>& segments, double dt) {
  FEDRA_EXPECTS(!segments.empty());
  FEDRA_EXPECTS(dt > 0.0);
  std::vector<double> samples;
  for (const auto& [duration, bandwidth] : segments) {
    FEDRA_EXPECTS(duration > 0.0);
    FEDRA_EXPECTS(bandwidth >= 0.0);
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(duration / dt)));
    samples.insert(samples.end(), count, bandwidth);
  }
  return BandwidthTrace(std::move(samples), dt);
}

BandwidthTrace blackout_trace(const BandwidthTrace& trace, double start,
                              double duration) {
  FEDRA_EXPECTS(start >= 0.0);
  FEDRA_EXPECTS(duration >= 0.0);
  if (duration == 0.0) return trace;
  FEDRA_EXPECTS(duration < trace.duration());

  const double dt = trace.resolution();
  const std::size_t n = trace.num_samples();
  std::vector<double> samples = trace.samples();
  const double local = std::fmod(start, trace.duration());
  const auto first = static_cast<std::size_t>(local / dt) % n;
  // Every sample bin [j*dt, (j+1)*dt) that intersects the window goes
  // dark; ceil() so a window ending mid-bin silences that bin too.
  const auto touched = std::min<std::size_t>(
      n - 1, static_cast<std::size_t>(
                 std::ceil((local - std::floor(local / dt) * dt + duration) /
                           dt)));
  for (std::size_t k = 0; k < touched; ++k) {
    samples[(first + k) % n] = 0.0;
  }
  double remaining = 0.0;
  for (double s : samples) remaining += s;
  // The outage must not silence the entire trace (upload_finish_time
  // requires positive mean bandwidth).
  FEDRA_EXPECTS(remaining > 0.0);
  return BandwidthTrace(std::move(samples), dt);
}

}  // namespace fedra
