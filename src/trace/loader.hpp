// Loading measured bandwidth traces from CSV, so the real Ghent 4G / HSDPA
// datasets drop into the pipeline unmodified when available.
//
// Accepted layouts (header row optional, auto-detected):
//   bandwidth                     -- one sample per row, uniform dt
//   timestamp,bandwidth           -- resampled onto a uniform dt grid
// Bandwidth unit is bytes/second unless `scale` converts it (e.g. pass
// 1e6 when the file stores MB/s).
#pragma once

#include <string>

#include "trace/bandwidth_trace.hpp"

namespace fedra {

struct TraceLoadOptions {
  double dt = 1.0;     ///< output resolution, seconds
  double scale = 1.0;  ///< multiply every bandwidth value by this
};

/// Loads one trace. Throws std::runtime_error on unreadable or malformed
/// files (non-numeric cells after the optional header, <1 sample, ...).
BandwidthTrace load_trace_csv(const std::string& path,
                              const TraceLoadOptions& options = {});

}  // namespace fedra
