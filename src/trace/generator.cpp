#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedra {

TraceModel lte_walking_model() {
  TraceModel m;
  const double mb = 1e6;
  m.regime_means = {0.7 * mb, 3.5 * mb, 7.5 * mb};
  m.noise_frac = 0.25;
  m.ar_coeff = 0.85;
  m.persistence = 0.995;  // mean regime dwell ~200 s at dt = 1 s (Fig. 2a)
  m.min_bw = 0.1 * mb;
  m.max_bw = 9.0 * mb;
  m.dt = 1.0;
  m.level_jitter = 0.4;  // each walking route has its own signal level
  return m;
}

TraceModel hsdpa_bus_model() {
  TraceModel m;
  const double kb = 1e3;
  m.regime_means = {60.0 * kb, 250.0 * kb, 600.0 * kb};
  m.noise_frac = 0.4;
  m.ar_coeff = 0.7;
  m.persistence = 0.94;  // buses change conditions faster than walkers
  m.min_bw = 5.0 * kb;
  m.max_bw = 800.0 * kb;
  m.dt = 1.0;
  m.level_jitter = 0.4;
  return m;
}

BandwidthTrace generate_trace(const TraceModel& model,
                              std::size_t num_samples, Rng& rng) {
  FEDRA_EXPECTS(num_samples > 0);
  FEDRA_EXPECTS(!model.regime_means.empty());
  FEDRA_EXPECTS(model.persistence >= 0.0 && model.persistence <= 1.0);
  FEDRA_EXPECTS(model.ar_coeff >= 0.0 && model.ar_coeff < 1.0);
  FEDRA_EXPECTS(model.min_bw >= 0.0 && model.min_bw <= model.max_bw);

  const std::size_t regimes = model.regime_means.size();
  std::size_t regime =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(regimes) - 1));
  double fluctuation = 0.0;  // AR(1) state, relative to regime mean

  std::vector<double> samples(num_samples);
  for (std::size_t j = 0; j < num_samples; ++j) {
    if (!rng.bernoulli(model.persistence) && regimes > 1) {
      // Jump to a uniformly random *different* regime.
      std::size_t next;
      do {
        next = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(regimes) - 1));
      } while (next == regime);
      regime = next;
    }
    const double mean_bw = model.regime_means[regime];
    const double sigma = model.noise_frac * mean_bw *
                         std::sqrt(1.0 - model.ar_coeff * model.ar_coeff);
    fluctuation = model.ar_coeff * fluctuation + rng.gaussian(0.0, sigma);
    samples[j] = std::clamp(mean_bw + fluctuation, model.min_bw, model.max_bw);
  }
  return BandwidthTrace(std::move(samples), model.dt);
}

BandwidthTrace constant_trace(double bandwidth, std::size_t num_samples,
                              double dt) {
  FEDRA_EXPECTS(bandwidth > 0.0);
  return BandwidthTrace(std::vector<double>(num_samples, bandwidth), dt);
}

std::vector<BandwidthTrace> generate_trace_set(const std::string& preset,
                                               std::size_t count,
                                               std::size_t num_samples,
                                               Rng& rng) {
  TraceModel model;
  if (preset == "lte_walking") {
    model = lte_walking_model();
  } else if (preset == "hsdpa_bus") {
    model = hsdpa_bus_model();
  } else {
    throw std::invalid_argument("unknown trace preset: " + preset);
  }
  std::vector<BandwidthTrace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng child = rng.split();
    TraceModel scaled = model;
    if (model.level_jitter > 0.0) {
      const double f = child.uniform(1.0 - model.level_jitter,
                                     1.0 + model.level_jitter);
      for (auto& mean : scaled.regime_means) mean *= f;
      scaled.min_bw *= f;
      scaled.max_bw *= f;
    }
    traces.push_back(generate_trace(scaled, num_samples, child));
  }
  return traces;
}

}  // namespace fedra
