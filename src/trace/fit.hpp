// Fitting the Markov-AR trace model to measured data.
//
// Given a real bandwidth trace (e.g. loaded from the Ghent 4G CSVs), this
// estimates the TraceModel parameters the synthetic generator needs:
//   * regime means via 1-D k-means (Lloyd's algorithm) over the samples;
//   * regime persistence from the empirical self-transition frequency of
//     the nearest-regime labeling;
//   * AR(1) coefficient from the lag-1 autocorrelation of within-regime
//     residuals;
//   * noise fraction from the residual std relative to the regime mean.
//
// The round trip (measured trace -> fit -> generate) produces synthetic
// traces with matched first/second-order statistics, so experiments can
// be scaled beyond the duration of the measured data.
#pragma once

#include <cstddef>

#include "trace/bandwidth_trace.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace fedra {

struct FitOptions {
  std::size_t regimes = 3;
  std::size_t kmeans_iterations = 50;
  /// Seed for k-means initialization.
  std::uint64_t seed = 1;
};

/// Diagnostics accompanying a fit.
struct FitResult {
  TraceModel model;
  /// Nearest-regime label per sample.
  std::vector<std::size_t> labels;
  /// Fraction of samples per regime.
  std::vector<double> occupancy;
  /// Mean within-regime residual std, relative to the regime mean.
  double residual_frac = 0.0;
};

/// Fits a TraceModel to a measured trace. Requires at least
/// options.regimes distinct sample values.
FitResult fit_trace_model(const BandwidthTrace& trace,
                          const FitOptions& options = {});

}  // namespace fedra
