#include "trace/loader.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace fedra {

namespace {

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    // Allow trailing whitespace only.
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

BandwidthTrace load_trace_csv(const std::string& path,
                              const TraceLoadOptions& options) {
  if (options.dt <= 0.0) throw std::invalid_argument("dt must be positive");
  if (options.scale <= 0.0) {
    throw std::invalid_argument("scale must be positive");
  }
  const auto rows = read_csv(path);
  if (rows.empty()) throw std::runtime_error("empty trace file: " + path);

  std::size_t first = 0;
  {
    // Header row: first cell not numeric.
    double tmp;
    if (!parse_double(rows[0][0], tmp)) first = 1;
  }
  if (first >= rows.size()) {
    throw std::runtime_error("trace file has no data rows: " + path);
  }

  const bool timestamped = rows[first].size() >= 2;
  if (!timestamped) {
    std::vector<double> samples;
    samples.reserve(rows.size() - first);
    for (std::size_t i = first; i < rows.size(); ++i) {
      double bw;
      if (!parse_double(rows[i][0], bw)) {
        throw std::runtime_error("non-numeric bandwidth in " + path +
                                 " row " + std::to_string(i + 1));
      }
      samples.push_back(bw * options.scale);
    }
    return BandwidthTrace(std::move(samples), options.dt);
  }

  // timestamp,bandwidth: piecewise-constant resample onto a uniform grid.
  std::vector<double> times;
  std::vector<double> values;
  for (std::size_t i = first; i < rows.size(); ++i) {
    double t, bw;
    if (rows[i].size() < 2 || !parse_double(rows[i][0], t) ||
        !parse_double(rows[i][1], bw)) {
      throw std::runtime_error("malformed row in " + path + " row " +
                               std::to_string(i + 1));
    }
    if (!times.empty() && t <= times.back()) {
      throw std::runtime_error("timestamps not strictly increasing in " +
                               path);
    }
    times.push_back(t);
    values.push_back(bw * options.scale);
  }
  const double t0 = times.front();
  const double t1 = times.back();
  const auto n = static_cast<std::size_t>(
      std::max(1.0, std::floor((t1 - t0) / options.dt)));
  std::vector<double> samples(n);
  std::size_t src = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double t = t0 + (static_cast<double>(j) + 0.5) * options.dt;
    while (src + 1 < times.size() && times[src + 1] <= t) ++src;
    samples[j] = values[src];
  }
  return BandwidthTrace(std::move(samples), options.dt);
}

}  // namespace fedra
