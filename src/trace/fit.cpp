#include "trace/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fedra {

namespace {

// Lloyd's algorithm in 1-D. Returns sorted centers.
std::vector<double> kmeans_1d(const std::vector<double>& xs, std::size_t k,
                              std::size_t iterations, Rng& rng) {
  // Initialize with quantile-spread picks (deterministic given the seed's
  // tiebreak); quantile seeding converges far faster than random in 1-D.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> centers(k);
  for (std::size_t c = 0; c < k; ++c) {
    const double q = (static_cast<double>(c) + 0.5) / static_cast<double>(k);
    centers[c] = sorted[static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1))];
  }
  // Degenerate duplicates: nudge with random data points.
  for (std::size_t c = 1; c < k; ++c) {
    while (centers[c] <= centers[c - 1]) {
      centers[c] = xs[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(xs.size()) - 1))];
      std::sort(centers.begin(), centers.end());
    }
  }

  std::vector<std::size_t> assign(xs.size());
  for (std::size_t it = 0; it < iterations; ++it) {
    bool changed = false;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = std::abs(xs[i] - centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    std::vector<double> sums(k, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sums[assign[i]] += xs[i];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) centers[c] = sums[c] / static_cast<double>(counts[c]);
    }
    if (!changed && it > 0) break;
  }
  std::sort(centers.begin(), centers.end());
  return centers;
}

}  // namespace

FitResult fit_trace_model(const BandwidthTrace& trace,
                          const FitOptions& options) {
  FEDRA_EXPECTS(options.regimes >= 1);
  FEDRA_EXPECTS(options.kmeans_iterations >= 1);
  const auto& xs = trace.samples();
  FEDRA_EXPECTS(xs.size() >= 2 * options.regimes);

  Rng rng(options.seed);
  FitResult result;
  result.model.regime_means =
      kmeans_1d(xs, options.regimes, options.kmeans_iterations, rng);

  // Label samples by the nearest regime.
  result.labels.resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < result.model.regime_means.size(); ++c) {
      const double d = std::abs(xs[i] - result.model.regime_means[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    result.labels[i] = best;
  }

  // Occupancy and self-transition probability (persistence).
  result.occupancy.assign(options.regimes, 0.0);
  for (auto l : result.labels) result.occupancy[l] += 1.0;
  for (auto& o : result.occupancy) o /= static_cast<double>(xs.size());

  std::size_t stays = 0;
  for (std::size_t i = 0; i + 1 < result.labels.size(); ++i) {
    if (result.labels[i] == result.labels[i + 1]) ++stays;
  }
  result.model.persistence =
      std::clamp(static_cast<double>(stays) /
                     static_cast<double>(result.labels.size() - 1),
                 0.0, 0.9999);

  // Within-regime residuals: AR(1) coefficient + relative noise scale.
  std::vector<double> residual(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    residual[i] = xs[i] - result.model.regime_means[result.labels[i]];
  }
  double num = 0.0;
  double den = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (result.labels[i] != result.labels[i + 1]) continue;  // same regime
    num += residual[i] * residual[i + 1];
    den += residual[i] * residual[i];
    ++pairs;
  }
  result.model.ar_coeff =
      (pairs > 1 && den > 0.0) ? std::clamp(num / den, 0.0, 0.99) : 0.0;

  // Relative residual scale, averaged over regimes weighted by occupancy.
  double frac_acc = 0.0;
  double weight_acc = 0.0;
  for (std::size_t c = 0; c < options.regimes; ++c) {
    double var = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (result.labels[i] != c) continue;
      var += residual[i] * residual[i];
      ++n;
    }
    if (n < 2 || result.model.regime_means[c] <= 0.0) continue;
    const double sd = std::sqrt(var / static_cast<double>(n - 1));
    frac_acc += result.occupancy[c] * sd / result.model.regime_means[c];
    weight_acc += result.occupancy[c];
  }
  result.residual_frac = weight_acc > 0.0 ? frac_acc / weight_acc : 0.0;
  result.model.noise_frac = std::max(result.residual_frac, 1e-3);

  result.model.min_bw = trace.min_bandwidth();
  result.model.max_bw = trace.max_bandwidth();
  result.model.dt = trace.resolution();
  result.model.level_jitter = 0.0;  // a fit describes ONE trace's level
  return result;
}

}  // namespace fedra
