// Shared bandwidth-trace storage for fleets.
//
// The legacy simulator construction gave every device a private
// BandwidthTrace COPY — fine at 3 or 50 devices, ruinous at 10^6 (a
// 3000-sample trace is ~48 KB; a million private copies is ~48 GB). The
// paper's own setup is the shared form anyway: 50 devices draw from 5
// walking traces. TraceTable stores the distinct traces once (the pool)
// plus one uint32 trace id per device, so fleet memory is
// O(pool + devices), and hands the pricing engine batched upload solves
// over device ranges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/bandwidth_trace.hpp"
#include "util/contracts.hpp"

namespace fedra {

class TraceTable {
 public:
  TraceTable() = default;

  /// One private pool entry per device (identity assignment) — the legacy
  /// vector-of-traces construction path.
  explicit TraceTable(std::vector<BandwidthTrace> traces);

  /// Shared pool: device i uploads against pool[assignment[i]].
  TraceTable(std::vector<BandwidthTrace> pool,
             std::vector<std::uint32_t> assignment);

  /// Number of devices (assignment length), not pool entries.
  std::size_t size() const { return assignment_.size(); }
  bool empty() const { return assignment_.empty(); }
  std::size_t pool_size() const { return pool_.size(); }

  const BandwidthTrace& operator[](std::size_t device) const {
    FEDRA_EXPECTS(device < assignment_.size());
    return pool_[assignment_[device]];
  }
  std::uint32_t trace_id(std::size_t device) const {
    FEDRA_EXPECTS(device < assignment_.size());
    return assignment_[device];
  }

  const std::vector<BandwidthTrace>& pool() const { return pool_; }
  const std::vector<std::uint32_t>& assignment() const { return assignment_; }

  /// One private trace copy per device (tests and oracles that want a
  /// plain per-device vector).
  std::vector<BandwidthTrace> materialize() const;

  /// Batched Eq. (3) solve for `count` uploads:
  /// out[k] = (*this)[devices[k]].upload_finish_time(starts[k], bytes),
  /// bit-identical to the scalar calls (see free upload_finish_times).
  void upload_finish_times(const std::size_t* devices, std::size_t count,
                           const double* starts, double bytes,
                           double* out) const;

 private:
  std::vector<BandwidthTrace> pool_;
  std::vector<std::uint32_t> assignment_;
};

}  // namespace fedra
