// Trace transforms for scenario construction: scale, concatenate, slice,
// and blend traces. The adaptive-scheduler example builds its regime-shift
// scenario from these instead of hand-rolled sample vectors, and tests use
// them to craft exact edge cases.
#pragma once

#include <vector>

#include "trace/bandwidth_trace.hpp"

namespace fedra {

/// Multiplies every sample by `factor` (> 0).
BandwidthTrace scale_trace(const BandwidthTrace& trace, double factor);

/// Joins traces end to end. All inputs must share the same resolution.
BandwidthTrace concat_traces(const std::vector<BandwidthTrace>& traces);

/// Samples [first, first + count) of one period.
BandwidthTrace slice_trace(const BandwidthTrace& trace, std::size_t first,
                           std::size_t count);

/// Per-sample convex blend: (1 - w) * a + w * b. Traces must match in
/// resolution and length; w in [0, 1].
BandwidthTrace blend_traces(const BandwidthTrace& a, const BandwidthTrace& b,
                            double w);

/// Piecewise-constant trace from (duration_seconds, bandwidth) segments at
/// the given resolution. Durations are rounded to whole samples (at least
/// one per segment).
BandwidthTrace step_trace(
    const std::vector<std::pair<double, double>>& segments, double dt = 1.0);

/// Radio-outage transform: zeroes every sample overlapping the absolute
/// time window [start, start + duration). The window is mapped into trace
/// period coordinates (periodic extension), wrapping across the period
/// boundary if needed. Requires duration < one period and that the
/// surviving samples still carry positive mean bandwidth (a trace that can
/// never move a byte is invalid). duration == 0 returns the trace as-is.
BandwidthTrace blackout_trace(const BandwidthTrace& trace, double start,
                              double duration);

}  // namespace fedra
