// Synthetic bandwidth-trace generation.
//
// The paper evaluates against two measured datasets we cannot redistribute:
// the Ghent 4G/LTE traces [26] (walking scenario, roughly 0.1-9 MB/s with
// regime shifts over tens of seconds — see paper Fig. 2a) and the Norwegian
// HSDPA bus traces [12] (0-800 KB/s, highly volatile — Fig. 2b). The
// generator reproduces those processes with a 3-state Markov regime chain
// (poor / medium / good) plus within-regime AR(1) fluctuation, which
// captures the two statistics the DRL agent actually exploits: regime
// persistence over the slot timescale h, and heavy short-term variation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/bandwidth_trace.hpp"
#include "util/rng.hpp"

namespace fedra {

/// Parameters of the Markov-regime AR(1) bandwidth process.
struct TraceModel {
  /// Mean bandwidth (bytes/s) of each regime.
  std::vector<double> regime_means;
  /// Relative AR(1) noise scale per regime (std of fluctuation as a
  /// fraction of the regime mean).
  double noise_frac = 0.25;
  /// AR(1) coefficient in (0, 1): higher = smoother within a regime.
  double ar_coeff = 0.85;
  /// Probability of staying in the current regime per sample.
  double persistence = 0.98;
  /// Hard bounds on instantaneous bandwidth (bytes/s).
  double min_bw = 1.0;
  double max_bw = 1e9;
  /// Sample spacing in seconds.
  double dt = 1.0;
  /// Per-trace level diversity used by generate_trace_set: each trace's
  /// regime means and bounds are scaled by a factor drawn uniformly from
  /// [1 - level_jitter, 1 + level_jitter]. Models the paper's setup where
  /// each device replays a DIFFERENT measured walking dataset with its own
  /// characteristic signal level. 0 disables it.
  double level_jitter = 0.0;
};

/// Ghent-like 4G/LTE walking scenario: regimes ~ {0.7, 3.5, 7.5} MB/s,
/// bounded to [0.1, 9] MB/s, regime dwell ~ tens of seconds.
TraceModel lte_walking_model();

/// HSDPA-bus-like scenario: regimes ~ {60, 250, 600} KB/s, bounded to
/// [5, 800] KB/s, more volatile than walking.
TraceModel hsdpa_bus_model();

/// Generates one trace of `num_samples` samples from `model`.
BandwidthTrace generate_trace(const TraceModel& model,
                              std::size_t num_samples, Rng& rng);

/// Constant-bandwidth trace (useful for analytic tests and the Static
/// baseline's idealized world).
BandwidthTrace constant_trace(double bandwidth, std::size_t num_samples,
                              double dt = 1.0);

/// Generates `count` independent traces from the named preset
/// ("lte_walking" or "hsdpa_bus"), each with its own RNG stream.
std::vector<BandwidthTrace> generate_trace_set(const std::string& preset,
                                               std::size_t count,
                                               std::size_t num_samples,
                                               Rng& rng);

}  // namespace fedra
