#include "trace/bandwidth_trace.hpp"

#include <algorithm>
#include <cmath>

namespace fedra {

BandwidthTrace::BandwidthTrace(std::vector<double> samples, double dt)
    : samples_(std::move(samples)), dt_(dt) {
  FEDRA_EXPECTS(!samples_.empty());
  FEDRA_EXPECTS(dt_ > 0.0);
  prefix_.resize(samples_.size() + 1, 0.0);
  for (std::size_t j = 0; j < samples_.size(); ++j) {
    FEDRA_EXPECTS(samples_[j] >= 0.0);
    prefix_[j + 1] = prefix_[j] + samples_[j] * dt_;
  }
  // A trace that can never move a byte would make uploads take forever.
  FEDRA_EXPECTS(prefix_.back() > 0.0);
}

double BandwidthTrace::bandwidth_at(double t) const {
  FEDRA_EXPECTS(t >= 0.0);
  const double period = duration();
  double local = std::fmod(t, period);
  auto j = static_cast<std::size_t>(local / dt_);
  if (j >= samples_.size()) j = samples_.size() - 1;  // fp edge at period end
  return samples_[j];
}

double BandwidthTrace::cumulative_in_period(double t) const {
  const auto j = std::min(static_cast<std::size_t>(t / dt_),
                          samples_.size() - 1);
  const double within = t - static_cast<double>(j) * dt_;
  return prefix_[j] + samples_[j] * within;
}

double BandwidthTrace::cumulative_bytes(double t) const {
  FEDRA_EXPECTS(t >= 0.0);
  const double period = duration();
  const double full_periods = std::floor(t / period);
  const double local = t - full_periods * period;
  return full_periods * prefix_.back() + cumulative_in_period(local);
}

double BandwidthTrace::average_bandwidth(double t0, double t1) const {
  FEDRA_EXPECTS(t1 > t0 && t0 >= 0.0);
  return (cumulative_bytes(t1) - cumulative_bytes(t0)) / (t1 - t0);
}

double BandwidthTrace::upload_finish_time(double start, double bytes) const {
  FEDRA_EXPECTS(start >= 0.0);
  FEDRA_EXPECTS(bytes >= 0.0);
  if (bytes == 0.0) return start;
  const double period = duration();
  const double per_period = prefix_.back();

  double target = cumulative_bytes(start) + bytes;
  // Skip whole periods first, then binary-search within one period.
  const double periods = std::floor(target / per_period);
  double remaining = target - periods * per_period;
  // remaining in [0, per_period); find smallest local t with
  // cumulative_in_period(t) >= remaining.
  const auto it = std::lower_bound(prefix_.begin(), prefix_.end(), remaining);
  double local;
  if (it == prefix_.begin()) {
    local = 0.0;
  } else {
    const auto j = static_cast<std::size_t>(it - prefix_.begin()) - 1;
    const double into = remaining - prefix_[j];
    // samples_[j] can be 0 only if into == 0 (prefix flat over the bin);
    // lower_bound then lands at the bin start, so the division is safe.
    local = static_cast<double>(j) * dt_ +
            (samples_[j] > 0.0 ? into / samples_[j] : 0.0);
  }
  double finish = periods * period + local;
  // Guard against fp round-off making finish slightly precede start.
  return std::max(finish, start);
}

double BandwidthTrace::slot_average(long long slot, double h) const {
  FEDRA_EXPECTS(h > 0.0);
  const double period = duration();
  // Wrap negative slots into one period's worth of slots.
  const auto slots_per_period =
      static_cast<long long>(std::ceil(period / h));
  long long wrapped = slot % slots_per_period;
  if (wrapped < 0) wrapped += slots_per_period;
  const double t0 = static_cast<double>(wrapped) * h;
  return average_bandwidth(t0, t0 + h);
}

double BandwidthTrace::mean_bandwidth() const {
  return prefix_.back() / duration();
}

double BandwidthTrace::min_bandwidth() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

double BandwidthTrace::max_bandwidth() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace fedra
