#include "trace/bandwidth_trace.hpp"

#include <algorithm>
#include <cmath>

namespace fedra {

BandwidthTrace::BandwidthTrace(std::vector<double> samples, double dt)
    : samples_(std::move(samples)), dt_(dt) {
  FEDRA_EXPECTS(!samples_.empty());
  FEDRA_EXPECTS(dt_ > 0.0);
  prefix_.resize(samples_.size() + 1, 0.0);
  for (std::size_t j = 0; j < samples_.size(); ++j) {
    FEDRA_EXPECTS(samples_[j] >= 0.0);
    prefix_[j + 1] = prefix_[j] + samples_[j] * dt_;
  }
  // A trace that can never move a byte would make uploads take forever.
  FEDRA_EXPECTS(prefix_.back() > 0.0);
}

double BandwidthTrace::bandwidth_at(double t) const {
  FEDRA_EXPECTS(t >= 0.0);
  const double period = duration();
  double local = std::fmod(t, period);
  auto j = static_cast<std::size_t>(local / dt_);
  if (j >= samples_.size()) j = samples_.size() - 1;  // fp edge at period end
  return samples_[j];
}

double BandwidthTrace::cumulative_in_period(double t) const {
  const auto j = std::min(static_cast<std::size_t>(t / dt_),
                          samples_.size() - 1);
  const double within = t - static_cast<double>(j) * dt_;
  return prefix_[j] + samples_[j] * within;
}

double BandwidthTrace::cumulative_bytes(double t) const {
  FEDRA_EXPECTS(t >= 0.0);
  const double period = duration();
  const double full_periods = std::floor(t / period);
  const double local = t - full_periods * period;
  return full_periods * prefix_.back() + cumulative_in_period(local);
}

double BandwidthTrace::average_bandwidth(double t0, double t1) const {
  FEDRA_EXPECTS(t1 > t0 && t0 >= 0.0);
  return (cumulative_bytes(t1) - cumulative_bytes(t0)) / (t1 - t0);
}

double BandwidthTrace::upload_finish_time(double start, double bytes) const {
  FEDRA_EXPECTS(start >= 0.0);
  FEDRA_EXPECTS(bytes >= 0.0);
  if (bytes == 0.0) return start;
  const double period = duration();
  const double per_period = prefix_.back();

  double target = cumulative_bytes(start) + bytes;
  // Skip whole periods first, then binary-search within one period.
  const double periods = std::floor(target / per_period);
  double remaining = target - periods * per_period;
  // remaining in [0, per_period); find smallest local t with
  // cumulative_in_period(t) >= remaining.
  const auto it = std::lower_bound(prefix_.begin(), prefix_.end(), remaining);
  double local;
  if (it == prefix_.begin()) {
    local = 0.0;
  } else {
    const auto j = static_cast<std::size_t>(it - prefix_.begin()) - 1;
    const double into = remaining - prefix_[j];
    // samples_[j] can be 0 only if into == 0 (prefix flat over the bin);
    // lower_bound then lands at the bin start, so the division is safe.
    local = static_cast<double>(j) * dt_ +
            (samples_[j] > 0.0 ? into / samples_[j] : 0.0);
  }
  double finish = periods * period + local;
  // Guard against fp round-off making finish slightly precede start.
  return std::max(finish, start);
}

namespace {

constexpr std::size_t kSolveLanes = 8;

/// Lockstep solve for `lanes` uploads whose traces all have the same
/// sample count. Every arithmetic expression mirrors upload_finish_time /
/// cumulative_bytes operation for operation, so each lane's result is
/// bit-identical to the scalar call; the lower_bound index is unique given
/// the prefix array, so the branchless search lands on the same bin.
void solve_lockstep(const BandwidthTrace* const* traces, const double* starts,
                    std::size_t lanes, double bytes, double* out) {
  const std::size_t m = traces[0]->num_samples();
  const double* prefix[kSolveLanes];
  const double* samples[kSolveLanes];
  double dt[kSolveLanes];
  double period[kSolveLanes];
  double periods[kSolveLanes];
  double remaining[kSolveLanes];
  std::size_t base[kSolveLanes];
  for (std::size_t k = 0; k < lanes; ++k) {
    const BandwidthTrace& tr = *traces[k];
    prefix[k] = tr.prefix_bytes().data();
    samples[k] = tr.samples().data();
    dt[k] = tr.resolution();
    period[k] = tr.duration();
    const double per_period = tr.prefix_bytes().back();
    const double start = starts[k];
    FEDRA_EXPECTS(start >= 0.0);
    // cumulative_bytes(start), inlined with the member's exact op order.
    const double full_periods = std::floor(start / period[k]);
    const double local_t = start - full_periods * period[k];
    const auto j =
        std::min(static_cast<std::size_t>(local_t / dt[k]), m - 1);
    const double within = local_t - static_cast<double>(j) * dt[k];
    const double cum =
        full_periods * per_period + (prefix[k][j] + samples[k][j] * within);
    const double target = cum + bytes;
    periods[k] = std::floor(target / per_period);
    remaining[k] = target - periods[k] * per_period;
    base[k] = 0;
  }
  // Branchless lower_bound over the m+1 prefix entries, all lanes in
  // lockstep: the trip count depends only on m, never on the values.
  std::size_t len = m + 1;
  while (len > 1) {
    const std::size_t half = len / 2;
    for (std::size_t k = 0; k < lanes; ++k) {
      base[k] += prefix[k][base[k] + half - 1] < remaining[k] ? half : 0;
    }
    len -= half;
  }
  for (std::size_t k = 0; k < lanes; ++k) {
    const std::size_t idx =
        base[k] + (prefix[k][base[k]] < remaining[k] ? 1 : 0);
    double local;
    if (idx == 0) {
      local = 0.0;
    } else {
      const std::size_t j = idx - 1;
      const double into = remaining[k] - prefix[k][j];
      local = static_cast<double>(j) * dt[k] +
              (samples[k][j] > 0.0 ? into / samples[k][j] : 0.0);
    }
    const double finish = periods[k] * period[k] + local;
    out[k] = std::max(finish, starts[k]);
  }
}

}  // namespace

void upload_finish_times(const BandwidthTrace* const* traces,
                         const double* starts, std::size_t n, double bytes,
                         double* out) {
  FEDRA_EXPECTS(bytes >= 0.0);
  if (bytes == 0.0) {
    for (std::size_t k = 0; k < n; ++k) {
      FEDRA_EXPECTS(starts[k] >= 0.0);
      out[k] = starts[k];
    }
    return;
  }
  std::size_t k = 0;
  while (k < n) {
    const std::size_t lanes = std::min(kSolveLanes, n - k);
    const std::size_t m = traces[k]->num_samples();
    bool uniform = true;
    for (std::size_t l = 1; l < lanes; ++l) {
      uniform = uniform && traces[k + l]->num_samples() == m;
    }
    if (uniform) {
      solve_lockstep(traces + k, starts + k, lanes, bytes, out + k);
    } else {
      for (std::size_t l = 0; l < lanes; ++l) {
        out[k + l] = traces[k + l]->upload_finish_time(starts[k + l], bytes);
      }
    }
    k += lanes;
  }
}

void BandwidthTrace::upload_finish_times(const double* starts, std::size_t n,
                                         double bytes, double* out) const {
  const BandwidthTrace* lanes[kSolveLanes];
  for (auto& lane : lanes) lane = this;
  std::size_t k = 0;
  while (k < n) {
    const std::size_t batch = std::min(kSolveLanes, n - k);
    fedra::upload_finish_times(lanes, starts + k, batch, bytes, out + k);
    k += batch;
  }
}

double BandwidthTrace::slot_average(long long slot, double h) const {
  FEDRA_EXPECTS(h > 0.0);
  const double period = duration();
  // Wrap negative slots into one period's worth of slots.
  const auto slots_per_period =
      static_cast<long long>(std::ceil(period / h));
  long long wrapped = slot % slots_per_period;
  if (wrapped < 0) wrapped += slots_per_period;
  const double t0 = static_cast<double>(wrapped) * h;
  return average_bandwidth(t0, t0 + h);
}

double BandwidthTrace::mean_bandwidth() const {
  return prefix_.back() / duration();
}

double BandwidthTrace::min_bandwidth() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

double BandwidthTrace::max_bandwidth() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace fedra
