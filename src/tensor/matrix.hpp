// Dense row-major matrix of doubles — the storage type underneath the
// neural-network library. Vectors are 1xN or Nx1 matrices; std::span views
// expose rows without copying.
//
// Storage goes through TrackingAllocator so every heap allocation made on
// behalf of a Matrix bumps a process-wide byte/count tally (relaxed
// atomics; the cost is noise next to the allocation itself). The training
// workspaces in src/nn/ use that tally to prove their steady state is
// allocation-free, and PPO exports it as the `tensor.alloc_bytes`
// telemetry counter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fedra {

/// Process-wide tally of heap traffic from Matrix storage. Monotonic;
/// callers measure a region by differencing before/after.
struct TensorAllocStats {
  std::uint64_t bytes = 0;   ///< total bytes ever allocated
  std::uint64_t allocs = 0;  ///< total allocation calls
};

namespace detail {
std::atomic<std::uint64_t>& tensor_alloc_bytes_cell();
std::atomic<std::uint64_t>& tensor_alloc_count_cell();
}  // namespace detail

inline TensorAllocStats tensor_alloc_stats() {
  return {detail::tensor_alloc_bytes_cell().load(std::memory_order_relaxed),
          detail::tensor_alloc_count_cell().load(std::memory_order_relaxed)};
}

/// std::allocator<T> plus the global tally. Stateless, so all instances
/// compare equal and vectors move storage freely between them.
template <typename T>
struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    detail::tensor_alloc_bytes_cell().fetch_add(n * sizeof(T),
                                                std::memory_order_relaxed);
    detail::tensor_alloc_count_cell().fetch_add(1, std::memory_order_relaxed);
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) {
    std::allocator<T>{}.deallocate(p, n);
  }

  friend bool operator==(const TrackingAllocator&, const TrackingAllocator&) {
    return true;
  }
};

class Matrix {
 public:
  using Storage = std::vector<double, TrackingAllocator<double>>;

  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Construct from a nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// 1 x n row vector from values.
  static Matrix row_vector(std::span<const double> values);

  /// n x 1 column vector from values.
  static Matrix col_vector(std::span<const double> values);

  /// Entries i.i.d. uniform in [lo, hi).
  static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                               double lo = -1.0, double hi = 1.0);

  /// Entries i.i.d. normal(mean, stddev).
  static Matrix random_gaussian(std::size_t rows, std::size_t cols, Rng& rng,
                                double mean = 0.0, double stddev = 1.0);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  /// Elements the current storage can hold without reallocating.
  std::size_t capacity() const { return data_.capacity(); }

  double& operator()(std::size_t r, std::size_t c) {
    FEDRA_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    FEDRA_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Flat element access (row-major order).
  double& operator[](std::size_t i) {
    FEDRA_EXPECTS(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    FEDRA_EXPECTS(i < data_.size());
    return data_[i];
  }

  std::span<double> row(std::size_t r) {
    FEDRA_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    FEDRA_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return {data_.data(), data_.size()}; }
  std::span<const double> flat() const { return {data_.data(), data_.size()}; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double value);
  void set_zero() { fill(0.0); }

  /// Reshape in place; total element count must be preserved.
  void reshape(std::size_t rows, std::size_t cols);

  /// Re-dimension to rows x cols, reusing the existing heap block whenever
  /// its capacity suffices (the workspace idiom: shapes oscillate between
  /// a few steady-state values, so after warm-up this never allocates).
  /// Surviving element VALUES are unspecified — callers overwrite.
  void resize_reuse(std::size_t rows, std::size_t cols);

  /// Deep copy of `src` into this matrix's existing storage (capacity
  /// reused as in resize_reuse). Equivalent to operator= in value, but
  /// guaranteed allocation-free once capacity covers src.size().
  void assign_from(const Matrix& src);

  /// Frees the heap block and becomes 0x0 (capacity drops to zero).
  void release();

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // In-place arithmetic (shapes must match exactly; no broadcasting here —
  // broadcast helpers live in ops.hpp where intent is explicit).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  /// Hadamard (elementwise) product in place.
  Matrix& hadamard_inplace(const Matrix& other);

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Storage data_;
};

}  // namespace fedra
