#include "tensor/serialize.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace fedra {

namespace {
constexpr char kMagic[4] = {'F', 'M', 'A', 'T'};

// Dimension sanity caps shared by the stream and buffer readers. Each axis
// is capped BEFORE the product is formed, so the element-count check can
// never be bypassed by multiplication overflow (1e9 * 1e9 < 2^63).
constexpr std::uint64_t kMaxAxis = 1000000000ULL;
constexpr std::uint64_t kMaxElements = 1000000000ULL;

void check_dims(std::uint64_t rows, std::uint64_t cols) {
  if (rows > kMaxAxis || cols > kMaxAxis || rows * cols > kMaxElements) {
    throw SerializeError("matrix header implausibly large");
  }
}

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

std::uint64_t read_u64(std::istream& in) {
  char buf[8];
  in.read(buf, 8);
  if (!in) throw SerializeError("matrix stream truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}
}  // namespace

void write_matrix(std::ostream& out, const Matrix& m) {
  out.write(kMagic, sizeof(kMagic));
  write_u64(out, m.rows());
  write_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!out) throw SerializeError("matrix write failed");
}

Matrix read_matrix(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SerializeError("bad matrix magic");
  }
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  check_dims(rows, cols);
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in) throw SerializeError("matrix data truncated");
  return m;
}

void save_matrices(const std::string& path, const std::vector<Matrix>& ms) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SerializeError("cannot open for writing: " + path);
  write_u64(out, ms.size());
  for (const auto& m : ms) write_matrix(out, m);
}

std::vector<Matrix> load_matrices(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("cannot open for reading: " + path);
  const std::uint64_t n = read_u64(in);
  if (n > 1000000ULL) throw SerializeError("matrix count implausible");
  std::vector<Matrix> ms;
  ms.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) ms.push_back(read_matrix(in));
  return ms;
}

// --- ByteWriter -----------------------------------------------------------

void ByteWriter::put_u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::put_u16(std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::put_bytes(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void ByteWriter::put_string(std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw SerializeError("string too long to serialize");
  }
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

void ByteWriter::put_doubles(const std::vector<double>& xs) {
  put_u64(xs.size());
  put_bytes(xs.data(), xs.size() * sizeof(double));
}

void ByteWriter::put_u64s(const std::vector<std::uint64_t>& xs) {
  put_u64(xs.size());
  for (std::uint64_t x : xs) put_u64(x);
}

void ByteWriter::put_bools(const std::vector<bool>& xs) {
  put_u64(xs.size());
  for (bool b : xs) put_u8(b ? 1 : 0);
}

void ByteWriter::put_matrix(const Matrix& m) {
  put_bytes(kMagic, sizeof(kMagic));
  put_u64(m.rows());
  put_u64(m.cols());
  put_bytes(m.data(), m.size() * sizeof(double));
}

// --- ByteReader -----------------------------------------------------------

ByteReader::ByteReader(const void* data, std::size_t size)
    : p_(static_cast<const unsigned char*>(data)),
      end_(static_cast<const unsigned char*>(data) + size) {}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) throw SerializeError("buffer truncated");
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return *p_++;
}

std::uint16_t ByteReader::get_u16() {
  require(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(p_[i])
                                        << (8 * i)));
  }
  p_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

bool ByteReader::get_bool() {
  const std::uint8_t v = get_u8();
  if (v > 1) throw SerializeError("malformed bool");
  return v != 0;
}

void ByteReader::get_bytes(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, p_, size);
  p_ += size;
}

std::string ByteReader::get_string() {
  const std::uint32_t n = get_u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(p_), n);
  p_ += n;
  return s;
}

std::vector<double> ByteReader::get_doubles() {
  const std::uint64_t n = get_u64();
  if (n > remaining() / sizeof(double)) {
    throw SerializeError("double array truncated");
  }
  std::vector<double> xs(static_cast<std::size_t>(n));
  get_bytes(xs.data(), xs.size() * sizeof(double));
  return xs;
}

std::vector<std::uint64_t> ByteReader::get_u64s() {
  const std::uint64_t n = get_u64();
  if (n > remaining() / 8) throw SerializeError("u64 array truncated");
  std::vector<std::uint64_t> xs(static_cast<std::size_t>(n));
  for (auto& x : xs) x = get_u64();
  return xs;
}

std::vector<bool> ByteReader::get_bools() {
  const std::uint64_t n = get_u64();
  if (n > remaining()) throw SerializeError("bool array truncated");
  std::vector<bool> xs(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = get_bool();
  return xs;
}

Matrix ByteReader::get_matrix() {
  char magic[4];
  get_bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SerializeError("bad matrix magic");
  }
  const std::uint64_t rows = get_u64();
  const std::uint64_t cols = get_u64();
  check_dims(rows, cols);
  const std::uint64_t bytes = rows * cols * sizeof(double);
  if (bytes > remaining()) throw SerializeError("matrix data truncated");
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  get_bytes(m.data(), static_cast<std::size_t>(bytes));
  return m;
}

void ByteReader::expect_end() const {
  if (!at_end()) throw SerializeError("trailing bytes after payload");
}

}  // namespace fedra
