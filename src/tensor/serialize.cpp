#include "tensor/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace fedra {

namespace {
constexpr char kMagic[4] = {'F', 'M', 'A', 'T'};

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

std::uint64_t read_u64(std::istream& in) {
  char buf[8];
  in.read(buf, 8);
  if (!in) throw std::runtime_error("matrix stream truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}
}  // namespace

void write_matrix(std::ostream& out, const Matrix& m) {
  out.write(kMagic, sizeof(kMagic));
  write_u64(out, m.rows());
  write_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!out) throw std::runtime_error("matrix write failed");
}

Matrix read_matrix(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad matrix magic");
  }
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  // Sanity cap: 1e9 elements ~ 8 GB; anything bigger is a corrupt header.
  if (rows * cols > 1000000000ULL) {
    throw std::runtime_error("matrix header implausibly large");
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in) throw std::runtime_error("matrix data truncated");
  return m;
}

void save_matrices(const std::string& path, const std::vector<Matrix>& ms) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_u64(out, ms.size());
  for (const auto& m : ms) write_matrix(out, m);
}

std::vector<Matrix> load_matrices(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  const std::uint64_t n = read_u64(in);
  if (n > 1000000ULL) throw std::runtime_error("matrix count implausible");
  std::vector<Matrix> ms;
  ms.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) ms.push_back(read_matrix(in));
  return ms;
}

}  // namespace fedra
