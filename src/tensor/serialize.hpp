// Binary (de)serialization for model checkpointing.
//
// Two layers live here:
//
//   - the original stream API (write_matrix / read_matrix /
//     save_matrices / load_matrices): a small magic header, dimensions as
//     u64 little-endian, then raw doubles;
//   - a bounds-checked byte-buffer codec (ByteWriter / ByteReader) used by
//     the fedra::ckpt section format. ByteWriter appends primitives to an
//     in-memory buffer; ByteReader walks one and throws SerializeError on
//     any overrun or malformed framing instead of reading past the end.
//
// Matrices use the SAME framing in both layers (magic "FMAT", u64 rows,
// u64 cols, raw doubles little-endian), so a section payload written with
// ByteWriter::put_matrix is byte-identical to write_matrix's stream
// output. Doubles are written as raw IEEE-754 bits — NaN payloads,
// signed zeros, subnormals and infinities all round-trip exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/matrix.hpp"

namespace fedra {

/// Thrown on malformed or truncated serialized input (and I/O failures in
/// the stream layer). A subtype of std::runtime_error, so existing
/// catch sites keep working.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes one matrix to a binary stream. Throws SerializeError on I/O
/// failure.
void write_matrix(std::ostream& out, const Matrix& m);

/// Reads one matrix written by write_matrix. Throws SerializeError on
/// malformed input.
Matrix read_matrix(std::istream& in);

/// Saves a sequence of matrices (e.g. all parameters of a model) to a file.
void save_matrices(const std::string& path, const std::vector<Matrix>& ms);

/// Loads a sequence of matrices saved by save_matrices.
std::vector<Matrix> load_matrices(const std::string& path);

/// Appends little-endian primitives to an in-memory buffer. Containers are
/// length-prefixed so ByteReader can validate before allocating.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Raw IEEE-754 bits — every double value round-trips exactly.
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_bytes(const void* data, std::size_t size);
  /// u32 length + bytes.
  void put_string(std::string_view s);
  /// u64 count + raw doubles.
  void put_doubles(const std::vector<double>& xs);
  /// u64 count + u64 each.
  void put_u64s(const std::vector<std::uint64_t>& xs);
  /// u64 count + one byte per element.
  void put_bools(const std::vector<bool>& xs);
  /// Stream-compatible matrix framing (see file comment).
  void put_matrix(const Matrix& m);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Walks a byte buffer written by ByteWriter. Every getter checks bounds
/// and throws SerializeError instead of reading past the end; length
/// prefixes are validated against the remaining bytes before any
/// allocation, so a corrupted count cannot trigger a huge allocation.
/// Non-owning: the underlying buffer must outlive the reader.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size);
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  bool get_bool();
  void get_bytes(void* out, std::size_t size);
  std::string get_string();
  std::vector<double> get_doubles();
  std::vector<std::uint64_t> get_u64s();
  std::vector<bool> get_bools();
  Matrix get_matrix();

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool at_end() const { return p_ == end_; }
  /// Throws SerializeError unless every byte has been consumed (trailing
  /// garbage in a fixed-layout payload means the framing is wrong).
  void expect_end() const;

 private:
  void require(std::size_t n) const;

  const unsigned char* p_;
  const unsigned char* end_;
};

}  // namespace fedra
