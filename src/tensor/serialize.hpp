// Binary matrix (de)serialization for model checkpointing. The format is
// a small magic header, dimensions as u64 little-endian, then raw doubles.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace fedra {

/// Writes one matrix to a binary stream. Throws std::runtime_error on I/O
/// failure.
void write_matrix(std::ostream& out, const Matrix& m);

/// Reads one matrix written by write_matrix. Throws std::runtime_error on
/// malformed input.
Matrix read_matrix(std::istream& in);

/// Saves a sequence of matrices (e.g. all parameters of a model) to a file.
void save_matrices(const std::string& path, const std::vector<Matrix>& ms);

/// Loads a sequence of matrices saved by save_matrices.
std::vector<Matrix> load_matrices(const std::string& path);

}  // namespace fedra
