// Matrix kernels: blocked/parallel GEMM, transposed products, elementwise
// maps, broadcast helpers and reductions. Parallel variants split work
// across the global thread pool by output rows, so chunks write disjoint
// memory (no synchronization needed inside a kernel — CP.2/CP.3).
#pragma once

#include <functional>

#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace fedra {

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B using the given pool (rows of C parallelized).
Matrix matmul_parallel(const Matrix& a, const Matrix& b, ThreadPool& pool);

/// C = A^T * B without materializing A^T.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

// Elementwise binary ops (shapes must match).
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
Matrix scale(const Matrix& a, double s);

/// y = a*x + y (in place on y), the axpy BLAS idiom used by optimizers.
void axpy(double a, const Matrix& x, Matrix& y);

/// Applies f to every element, returning a new matrix.
Matrix apply(const Matrix& a, const std::function<double(double)>& f);

/// Applies f in place.
void apply_inplace(Matrix& a, const std::function<double(double)>& f);

/// Adds row vector `bias` (1 x cols) to every row of `a` in place.
void add_row_broadcast(Matrix& a, const Matrix& bias);

/// Column-wise sum producing a 1 x cols row vector.
Matrix col_sum(const Matrix& a);

/// Row-wise sum producing a rows x 1 column vector.
Matrix row_sum(const Matrix& a);

double sum(const Matrix& a);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

/// Dot product of two same-shaped matrices viewed as flat vectors.
double dot(const Matrix& a, const Matrix& b);

/// Index of the maximum element in row r.
std::size_t argmax_row(const Matrix& a, std::size_t r);

/// Max absolute difference between two same-shaped matrices.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Clips every element to [lo, hi] in place.
void clip_inplace(Matrix& a, double lo, double hi);

}  // namespace fedra
