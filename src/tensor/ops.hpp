// Matrix kernels: blocked/parallel GEMM, transposed products, elementwise
// maps, broadcast helpers and reductions.
//
// GEMM kernels are cache-blocked and register-tiled but BIT-EXACT with the
// naive triple loop: every output element accumulates its k terms in
// ascending-k order from a +0.0 start, and tiling only regroups (i, j)
// work, never the per-element reduction. The naive kernels are retained as
// `*_reference` oracles for the property tests and as the bench baseline.
//
// `_into` variants write into a caller-owned output, reusing its heap
// block when capacity suffices — the allocation-free path the nn/
// workspaces build on. Parallel variants split work across the thread
// pool by output rows, so chunks write disjoint memory (no synchronization
// needed inside a kernel — CP.2/CP.3) and any row partition produces
// bit-identical output.
#pragma once

#include <functional>

#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace fedra {

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B using the given pool (rows of C parallelized; bit-identical
/// to the serial kernel for every pool size).
Matrix matmul_parallel(const Matrix& a, const Matrix& b, ThreadPool& pool);

/// C = A^T * B without materializing A^T.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

// Allocation-free variants: `c` is re-dimensioned with capacity reuse and
// fully overwritten. `c` must not alias `a` or `b`.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);
void matmul_parallel_into(const Matrix& a, const Matrix& b, Matrix& c,
                          ThreadPool& pool);
void matmul_at_b_into(const Matrix& a, const Matrix& b, Matrix& c);
void matmul_a_bt_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B into `c`, routed through the global pool when the product is
/// large enough to amortize fork/join. Output is bit-identical to the
/// serial kernel regardless of pool size (row-partitioned work).
void matmul_auto_into(const Matrix& a, const Matrix& b, Matrix& c);

// Reference kernels: the naive ascending-k triple loops the blocked
// kernels must match bit-for-bit (including NaN/inf propagation — no
// zero-skip shortcuts). Used by tests as the oracle and by bench_gemm as
// the seed-scalar baseline.
Matrix matmul_reference(const Matrix& a, const Matrix& b);
Matrix matmul_at_b_reference(const Matrix& a, const Matrix& b);
Matrix matmul_a_bt_reference(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

// Elementwise binary ops (shapes must match).
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
Matrix scale(const Matrix& a, double s);

/// y = a*x + y (in place on y), the axpy BLAS idiom used by optimizers.
void axpy(double a, const Matrix& x, Matrix& y);

/// Applies f to every element, returning a new matrix.
Matrix apply(const Matrix& a, const std::function<double(double)>& f);

/// Applies f in place.
void apply_inplace(Matrix& a, const std::function<double(double)>& f);

/// Adds row vector `bias` (1 x cols) to every row of `a` in place.
void add_row_broadcast(Matrix& a, const Matrix& bias);

/// Column-wise sum producing a 1 x cols row vector.
Matrix col_sum(const Matrix& a);

/// Column-wise sum into `s` (re-dimensioned to 1 x cols, capacity reused).
void col_sum_into(const Matrix& a, Matrix& s);

/// Row-wise sum producing a rows x 1 column vector.
Matrix row_sum(const Matrix& a);

double sum(const Matrix& a);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

/// Dot product of two same-shaped matrices viewed as flat vectors.
double dot(const Matrix& a, const Matrix& b);

/// Index of the maximum element in row r.
std::size_t argmax_row(const Matrix& a, std::size_t r);

/// Max absolute difference between two same-shaped matrices.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Clips every element to [lo, hi] in place.
void clip_inplace(Matrix& a, double lo, double hi);

}  // namespace fedra
