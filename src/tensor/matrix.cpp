#include "tensor/matrix.hpp"

#include <algorithm>

namespace fedra {

namespace detail {

std::atomic<std::uint64_t>& tensor_alloc_bytes_cell() {
  static std::atomic<std::uint64_t> cell{0};
  return cell;
}

std::atomic<std::uint64_t>& tensor_alloc_count_cell() {
  static std::atomic<std::uint64_t> cell{0};
  return cell;
}

}  // namespace detail

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    FEDRA_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::row_vector(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::col_vector(std::span<const double> values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                              double lo, double hi) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::random_gaussian(std::size_t rows, std::size_t cols, Rng& rng,
                               double mean, double stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.gaussian(mean, stddev);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  FEDRA_EXPECTS(rows * cols == data_.size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::resize_reuse(std::size_t rows, std::size_t cols) {
  data_.resize(rows * cols);  // no-op on the heap once capacity covers it
  rows_ = rows;
  cols_ = cols;
}

void Matrix::assign_from(const Matrix& src) {
  if (this == &src) return;
  resize_reuse(src.rows_, src.cols_);
  std::copy(src.data_.begin(), src.data_.end(), data_.begin());
}

void Matrix::release() {
  Storage().swap(data_);
  rows_ = 0;
  cols_ = 0;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  FEDRA_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  FEDRA_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  FEDRA_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

}  // namespace fedra
