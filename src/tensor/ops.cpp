#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace fedra {

namespace {

// Inner kernel: accumulate rows [r0, r1) of C = A * B. Row-major inner loop
// order (k middle) keeps B access sequential for cache-friendly streaming.
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t n = a.cols();
  const std::size_t p = b.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    const double* arow = a.data() + i * n;
    double* crow = c.data() + i * p;
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * p;
      for (std::size_t j = 0; j < p; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_rows(a, b, c, 0, a.rows());
  return c;
}

Matrix matmul_parallel(const Matrix& a, const Matrix& b, ThreadPool& pool) {
  FEDRA_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // Parallelizing tiny products costs more than it saves.
  if (a.rows() * a.cols() * b.cols() < 64 * 64 * 64) {
    gemm_rows(a, b, c, 0, a.rows());
    return c;
  }
  pool.parallel_for_chunks(0, a.rows(),
                           [&](std::size_t lo, std::size_t hi) {
                             gemm_rows(a, b, c, lo, hi);
                           });
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t p = b.cols();
  for (std::size_t k = 0; k < m; ++k) {
    const double* arow = a.data() + k * n;
    const double* brow = b.data() + k * p;
    for (std::size_t i = 0; i < n; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.data() + i * p;
      for (std::size_t j = 0; j < p; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * n;
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.data() + j * n;
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += arow[k] * brow[k];
      c(i, j) = acc;
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c += b;
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c -= b;
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.hadamard_inplace(b);
  return c;
}

Matrix scale(const Matrix& a, double s) {
  Matrix c = a;
  c *= s;
  return c;
}

void axpy(double a, const Matrix& x, Matrix& y) {
  FEDRA_EXPECTS(x.same_shape(y));
  const double* xd = x.data();
  double* yd = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yd[i] += a * xd[i];
}

Matrix apply(const Matrix& a, const std::function<double(double)>& f) {
  Matrix c = a;
  apply_inplace(c, f);
  return c;
}

void apply_inplace(Matrix& a, const std::function<double(double)>& f) {
  for (auto& x : a.flat()) x = f(x);
}

void add_row_broadcast(Matrix& a, const Matrix& bias) {
  FEDRA_EXPECTS(bias.rows() == 1 && bias.cols() == a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] += bias[j];
  }
}

Matrix col_sum(const Matrix& a) {
  Matrix s(1, a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) s[j] += row[j];
  }
  return s;
}

Matrix row_sum(const Matrix& a) {
  Matrix s(a.rows(), 1);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    const double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j];
    s[i] = acc;
  }
  return s;
}

double sum(const Matrix& a) {
  double acc = 0.0;
  for (double x : a.flat()) acc += x;
  return acc;
}

double frobenius_norm(const Matrix& a) {
  double acc = 0.0;
  for (double x : a.flat()) acc += x * x;
  return std::sqrt(acc);
}

double dot(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  const double* ad = a.data();
  const double* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) acc += ad[i] * bd[i];
  return acc;
}

std::size_t argmax_row(const Matrix& a, std::size_t r) {
  FEDRA_EXPECTS(r < a.rows() && a.cols() > 0);
  auto row = a.row(r);
  std::size_t best = 0;
  for (std::size_t j = 1; j < row.size(); ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.same_shape(b));
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

void clip_inplace(Matrix& a, double lo, double hi) {
  FEDRA_EXPECTS(lo <= hi);
  for (auto& x : a.flat()) x = std::clamp(x, lo, hi);
}

}  // namespace fedra
