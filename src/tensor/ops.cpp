#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#define FEDRA_GEMM_X86_SIMD 1
#include <immintrin.h>
#else
#define FEDRA_GEMM_X86_SIMD 0
#endif

namespace fedra {

namespace {

// ---- Blocked GEMM ------------------------------------------------------
//
// All three products (A*B, A^T*B, A*B^T) share one blocked engine: an
// MR x NR register tile of C accumulated over one k block, with the B
// operand packed into contiguous (kc x nr) panels and the A operand read
// through (row, k) strides that encode whether A is traversed row-major
// (A*B, A*B^T) or column-major (A^T*B). Tiling regroups only (i, j) work;
// each C element still receives its k terms one at a time in ascending-k
// order starting from +0.0, which is what keeps the blocked kernels
// bit-identical to the reference loops (and the golden trajectory valid).
//
// Because the repo builds for baseline x86-64 (SSE2) by default, the full
// tiles dispatch at runtime to AVX-512F / AVX2 micro-kernels compiled via
// per-function target attributes. SIMD lanes hold distinct j columns, so
// per-element term order is untouched; the kernels use separate mul and
// add (never FMA — a fused a*b+c rounds once instead of twice), with an
// empty asm barrier on the product so the compiler cannot contract the
// pair even on ISAs whose feature set includes FMA.
constexpr std::size_t kKC = 128;  ///< k extent of a cache block
constexpr std::size_t kNC = 256;  ///< j extent of a cache block (packed B)
// kNC must be a multiple of every tier's NR so pack panels never overflow.
static_assert(kNC % 8 == 0 && kNC % 4 == 0);

/// Products below this flop count run serial even when a pool is offered.
constexpr std::size_t kParallelMinFlops = 64 * 64 * 64;

/// How gemm_blocked reads the B operand when packing a (kc x nc) block.
enum class BPack {
  kColumns,  ///< panel[kk][jj] = B[k0+kk][j0+jj]  (A*B, A^T*B)
  kRows,     ///< panel[kk][jj] = B[j0+jj][k0+kk]  (A*B^T: B rows are the
             ///<                                   contraction streams)
};

/// Copies one (kc x nc) block of B into panels of NR columns so the
/// micro-kernel streams it with unit stride. Pure data movement — packing
/// never touches the accumulation order.
template <std::size_t NR>
void pack_b_block(const double* b, std::size_t ldb, BPack mode,
                  std::size_t k0, std::size_t j0, std::size_t kc,
                  std::size_t nc, double* pack) {
  for (std::size_t jp = 0; jp * NR < nc; ++jp) {
    const std::size_t nr = std::min(NR, nc - jp * NR);
    double* dst = pack + jp * kc * NR;  // earlier panels are always full
    const std::size_t j = j0 + jp * NR;
    if (mode == BPack::kColumns) {
      for (std::size_t kk = 0; kk < kc; ++kk) {
        const double* src = b + (k0 + kk) * ldb + j;
        for (std::size_t jj = 0; jj < nr; ++jj) dst[kk * nr + jj] = src[jj];
      }
    } else {
      for (std::size_t jj = 0; jj < nr; ++jj) {
        const double* src = b + (j + jj) * ldb + k0;
        for (std::size_t kk = 0; kk < kc; ++kk) dst[kk * nr + jj] = src[kk];
      }
    }
  }
}

/// Full register tile, portable form: acc[ii][jj] += a(ii, kk) *
/// panel[kk][jj] for kk ascending, on top of the partial sums C already
/// holds from earlier k blocks. Fixed trip counts so the compiler unrolls
/// the jj loop; the per-element term order is exactly the reference
/// kernel's.
template <std::size_t MR, std::size_t NR>
void micro_full_generic(std::size_t kc, const double* a, std::size_t a_rs,
                        std::size_t a_cs, const double* bp, double* c,
                        std::size_t ldc) {
  double acc[MR][NR];
  for (std::size_t ii = 0; ii < MR; ++ii) {
    for (std::size_t jj = 0; jj < NR; ++jj) acc[ii][jj] = c[ii * ldc + jj];
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const double* b = bp + kk * NR;
    for (std::size_t ii = 0; ii < MR; ++ii) {
      const double av = a[ii * a_rs + kk * a_cs];
      for (std::size_t jj = 0; jj < NR; ++jj) acc[ii][jj] += av * b[jj];
    }
  }
  for (std::size_t ii = 0; ii < MR; ++ii) {
    for (std::size_t jj = 0; jj < NR; ++jj) c[ii * ldc + jj] = acc[ii][jj];
  }
}

#if FEDRA_GEMM_X86_SIMD
/// AVX2 4x8 tile. target("avx2") deliberately omits "fma": the ISA the
/// compiler sees has no fused multiply-add, so mul+add cannot contract and
/// every term rounds exactly like the scalar kernel. Lanes are distinct j
/// columns; kk still ascends one term at a time.
__attribute__((target("avx2"))) void micro_full_avx2(
    std::size_t kc, const double* a, std::size_t a_rs, std::size_t a_cs,
    const double* bp, double* c, std::size_t ldc) {
  __m256d acc[4][2];
  for (std::size_t ii = 0; ii < 4; ++ii) {
    acc[ii][0] = _mm256_loadu_pd(c + ii * ldc);
    acc[ii][1] = _mm256_loadu_pd(c + ii * ldc + 4);
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256d b0 = _mm256_loadu_pd(bp + kk * 8);
    const __m256d b1 = _mm256_loadu_pd(bp + kk * 8 + 4);
    for (std::size_t ii = 0; ii < 4; ++ii) {
      const __m256d av = _mm256_broadcast_sd(a + ii * a_rs + kk * a_cs);
      __m256d t0 = _mm256_mul_pd(av, b0);
      __m256d t1 = _mm256_mul_pd(av, b1);
      __asm__("" : "+x"(t0), "+x"(t1));  // keep mul/add unfused
      acc[ii][0] = _mm256_add_pd(acc[ii][0], t0);
      acc[ii][1] = _mm256_add_pd(acc[ii][1], t1);
    }
  }
  for (std::size_t ii = 0; ii < 4; ++ii) {
    _mm256_storeu_pd(c + ii * ldc, acc[ii][0]);
    _mm256_storeu_pd(c + ii * ldc + 4, acc[ii][1]);
  }
}

/// AVX-512F 8x8 tile. AVX-512F itself includes FMA encodings, so here the
/// asm barrier on the product is what guarantees the compiler emits
/// separate vmulpd/vaddpd (verified: contraction produces bit-different
/// sums AND ~53k mismatches vs the scalar kernel on a 256^3 product).
__attribute__((target("avx512f"))) void micro_full_avx512(
    std::size_t kc, const double* a, std::size_t a_rs, std::size_t a_cs,
    const double* bp, double* c, std::size_t ldc) {
  __m512d acc[8];
  for (std::size_t ii = 0; ii < 8; ++ii) {
    acc[ii] = _mm512_loadu_pd(c + ii * ldc);
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m512d b0 = _mm512_loadu_pd(bp + kk * 8);
    for (std::size_t ii = 0; ii < 8; ++ii) {
      const __m512d av = _mm512_set1_pd(a[ii * a_rs + kk * a_cs]);
      __m512d t = _mm512_mul_pd(av, b0);
      __asm__("" : "+v"(t));  // keep mul/add unfused
      acc[ii] = _mm512_add_pd(acc[ii], t);
    }
  }
  for (std::size_t ii = 0; ii < 8; ++ii) {
    _mm512_storeu_pd(c + ii * ldc, acc[ii]);
  }
}
#endif  // FEDRA_GEMM_X86_SIMD

/// Boundary tile (mr < MR or nr < NR): scalar with runtime bounds and the
/// same accumulation order, so row partitions and odd shapes stay
/// bit-exact no matter which tier handles the full tiles.
void micro_edge(std::size_t mr, std::size_t nr, std::size_t kc,
                const double* a, std::size_t a_rs, std::size_t a_cs,
                const double* bp, double* c, std::size_t ldc) {
  double acc[8][8];  // max tile across all tiers
  for (std::size_t ii = 0; ii < mr; ++ii) {
    for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] = c[ii * ldc + jj];
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const double* b = bp + kk * nr;
    for (std::size_t ii = 0; ii < mr; ++ii) {
      const double av = a[ii * a_rs + kk * a_cs];
      for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * b[jj];
    }
  }
  for (std::size_t ii = 0; ii < mr; ++ii) {
    for (std::size_t jj = 0; jj < nr; ++jj) c[ii * ldc + jj] = acc[ii][jj];
  }
}

using MicroFullFn = void (*)(std::size_t, const double*, std::size_t,
                             std::size_t, const double*, double*,
                             std::size_t);

/// Blocked driver: C(m x p) += Aop * Bop with contraction length kdim,
/// where Aop(i, k) = a[i*a_rs + k*a_cs] and Bop is packed per `mode`.
/// C must be zero-initialized (or hold valid partial sums). Safe to call
/// on disjoint row ranges from multiple threads.
template <std::size_t MR, std::size_t NR, MicroFullFn MicroFull>
void gemm_blocked_impl(std::size_t m, std::size_t kdim, std::size_t p,
                       const double* a, std::size_t a_rs, std::size_t a_cs,
                       const double* b, std::size_t ldb, BPack mode,
                       double* c, std::size_t ldc) {
  thread_local std::vector<double> pack_buf;  // plain heap: not a tensor
  if (pack_buf.size() < kKC * kNC) pack_buf.resize(kKC * kNC);
  for (std::size_t k0 = 0; k0 < kdim; k0 += kKC) {
    const std::size_t kc = std::min(kKC, kdim - k0);
    for (std::size_t j0 = 0; j0 < p; j0 += kNC) {
      const std::size_t nc = std::min(kNC, p - j0);
      pack_b_block<NR>(b, ldb, mode, k0, j0, kc, nc, pack_buf.data());
      for (std::size_t i0 = 0; i0 < m; i0 += MR) {
        const std::size_t mr = std::min(MR, m - i0);
        const double* abase = a + i0 * a_rs + k0 * a_cs;
        for (std::size_t jp = 0; jp * NR < nc; ++jp) {
          const std::size_t nr = std::min(NR, nc - jp * NR);
          const double* bp = pack_buf.data() + jp * kc * NR;
          double* ct = c + i0 * ldc + j0 + jp * NR;
          if (mr == MR && nr == NR) {
            MicroFull(kc, abase, a_rs, a_cs, bp, ct, ldc);
          } else {
            micro_edge(mr, nr, kc, abase, a_rs, a_cs, bp, ct, ldc);
          }
        }
      }
    }
  }
}

using GemmFn = void (*)(std::size_t, std::size_t, std::size_t, const double*,
                        std::size_t, std::size_t, const double*, std::size_t,
                        BPack, double*, std::size_t);

/// Picks the widest micro-kernel this CPU supports. Tier choice affects
/// only throughput, never bits — all tiers share the per-element
/// ascending-k accumulation order.
GemmFn select_gemm_impl() {
#if FEDRA_GEMM_X86_SIMD
  if (__builtin_cpu_supports("avx512f")) {
    return gemm_blocked_impl<8, 8, micro_full_avx512>;
  }
  if (__builtin_cpu_supports("avx2")) {
    return gemm_blocked_impl<4, 8, micro_full_avx2>;
  }
#endif
  return gemm_blocked_impl<4, 4, micro_full_generic<4, 4>>;
}

void gemm_blocked(std::size_t m, std::size_t kdim, std::size_t p,
                  const double* a, std::size_t a_rs, std::size_t a_cs,
                  const double* b, std::size_t ldb, BPack mode, double* c,
                  std::size_t ldc) {
  if (m == 0 || kdim == 0 || p == 0) return;
  static const GemmFn impl = select_gemm_impl();
  impl(m, kdim, p, a, a_rs, a_cs, b, ldb, mode, c, ldc);
}

void check_matmul_shapes(const Matrix& a, const Matrix& b, const Matrix& c) {
  FEDRA_EXPECTS(&c != &a && &c != &b);
  (void)a;
  (void)b;
  (void)c;
}

}  // namespace

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  FEDRA_EXPECTS(a.cols() == b.rows());
  check_matmul_shapes(a, b, c);
  c.resize_reuse(a.rows(), b.cols());
  c.set_zero();
  gemm_blocked(a.rows(), a.cols(), b.cols(), a.data(), a.cols(), 1, b.data(),
               b.cols(), BPack::kColumns, c.data(), c.cols());
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

void matmul_parallel_into(const Matrix& a, const Matrix& b, Matrix& c,
                          ThreadPool& pool) {
  FEDRA_EXPECTS(a.cols() == b.rows());
  check_matmul_shapes(a, b, c);
  c.resize_reuse(a.rows(), b.cols());
  c.set_zero();
  const std::size_t n = a.cols();
  const std::size_t p = b.cols();
  // Parallelizing tiny products costs more than it saves.
  if (pool.size() <= 1 || a.rows() * n * p < kParallelMinFlops) {
    gemm_blocked(a.rows(), n, p, a.data(), n, 1, b.data(), p,
                 BPack::kColumns, c.data(), p);
    return;
  }
  // Row-partitioned: each chunk runs the full blocked kernel on its rows.
  // A C element depends only on its own A row and all of B, so the chunk
  // boundaries cannot change any per-element accumulation — output is
  // bit-identical for every pool size and chunking.
  pool.parallel_for_chunks(0, a.rows(), [&](std::size_t lo, std::size_t hi) {
    gemm_blocked(hi - lo, n, p, a.data() + lo * n, n, 1, b.data(), p,
                 BPack::kColumns, c.data() + lo * p, p);
  });
}

Matrix matmul_parallel(const Matrix& a, const Matrix& b, ThreadPool& pool) {
  Matrix c;
  matmul_parallel_into(a, b, c, pool);
  return c;
}

void matmul_auto_into(const Matrix& a, const Matrix& b, Matrix& c) {
  ThreadPool& pool = global_pool();
  if (pool.size() > 1 &&
      a.rows() * a.cols() * b.cols() >= kParallelMinFlops) {
    matmul_parallel_into(a, b, c, pool);
  } else {
    matmul_into(a, b, c);
  }
}

void matmul_at_b_into(const Matrix& a, const Matrix& b, Matrix& c) {
  FEDRA_EXPECTS(a.rows() == b.rows());
  check_matmul_shapes(a, b, c);
  c.resize_reuse(a.cols(), b.cols());
  c.set_zero();
  // Output row i is column i of A: consecutive output rows sit 1 apart,
  // consecutive k terms a full A row apart.
  gemm_blocked(a.cols(), a.rows(), b.cols(), a.data(), 1, a.cols(), b.data(),
               b.cols(), BPack::kColumns, c.data(), c.cols());
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_at_b_into(a, b, c);
  return c;
}

void matmul_a_bt_into(const Matrix& a, const Matrix& b, Matrix& c) {
  FEDRA_EXPECTS(a.cols() == b.cols());
  check_matmul_shapes(a, b, c);
  c.resize_reuse(a.rows(), b.rows());
  c.set_zero();
  // B rows are the contraction streams; pack them k-major so the
  // micro-kernel reads one contiguous line per k step.
  gemm_blocked(a.rows(), a.cols(), b.rows(), a.data(), a.cols(), 1, b.data(),
               b.cols(), BPack::kRows, c.data(), c.cols());
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_a_bt_into(a, b, c);
  return c;
}

Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const std::size_t n = a.cols();
  const std::size_t p = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * n;
    double* crow = c.data() + i * p;
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = arow[k];
      const double* brow = b.data() + k * p;
      for (std::size_t j = 0; j < p; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_at_b_reference(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t p = b.cols();
  for (std::size_t k = 0; k < m; ++k) {
    const double* arow = a.data() + k * n;
    const double* brow = b.data() + k * p;
    for (std::size_t i = 0; i < n; ++i) {
      const double aki = arow[i];
      double* crow = c.data() + i * p;
      for (std::size_t j = 0; j < p; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt_reference(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * n;
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.data() + j * n;
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += arow[k] * brow[k];
      c(i, j) = acc;
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c += b;
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c -= b;
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.hadamard_inplace(b);
  return c;
}

Matrix scale(const Matrix& a, double s) {
  Matrix c = a;
  c *= s;
  return c;
}

void axpy(double a, const Matrix& x, Matrix& y) {
  FEDRA_EXPECTS(x.same_shape(y));
  const double* xd = x.data();
  double* yd = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yd[i] += a * xd[i];
}

Matrix apply(const Matrix& a, const std::function<double(double)>& f) {
  Matrix c = a;
  apply_inplace(c, f);
  return c;
}

void apply_inplace(Matrix& a, const std::function<double(double)>& f) {
  for (auto& x : a.flat()) x = f(x);
}

void add_row_broadcast(Matrix& a, const Matrix& bias) {
  FEDRA_EXPECTS(bias.rows() == 1 && bias.cols() == a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] += bias[j];
  }
}

void col_sum_into(const Matrix& a, Matrix& s) {
  FEDRA_EXPECTS(&s != &a);
  s.resize_reuse(1, a.cols());
  s.set_zero();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) s[j] += row[j];
  }
}

Matrix col_sum(const Matrix& a) {
  Matrix s;
  col_sum_into(a, s);
  return s;
}

Matrix row_sum(const Matrix& a) {
  Matrix s(a.rows(), 1);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    const double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j];
    s[i] = acc;
  }
  return s;
}

double sum(const Matrix& a) {
  double acc = 0.0;
  for (double x : a.flat()) acc += x;
  return acc;
}

double frobenius_norm(const Matrix& a) {
  double acc = 0.0;
  for (double x : a.flat()) acc += x * x;
  return std::sqrt(acc);
}

double dot(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  const double* ad = a.data();
  const double* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) acc += ad[i] * bd[i];
  return acc;
}

std::size_t argmax_row(const Matrix& a, std::size_t r) {
  FEDRA_EXPECTS(r < a.rows() && a.cols() > 0);
  auto row = a.row(r);
  std::size_t best = 0;
  for (std::size_t j = 1; j < row.size(); ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  FEDRA_EXPECTS(a.same_shape(b));
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

void clip_inplace(Matrix& a, double lo, double hi) {
  FEDRA_EXPECTS(lo <= hi);
  for (auto& x : a.flat()) x = std::clamp(x, lo, hi);
}

}  // namespace fedra
