#include "fl/selection.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fedra {

std::vector<bool> AllSelector::select(const SimulatorBase& sim) {
  return std::vector<bool>(sim.num_devices(), true);
}

RandomSelector::RandomSelector(std::size_t k, std::uint64_t seed)
    : k_(k), rng_(seed) {
  FEDRA_EXPECTS(k > 0);
}

std::vector<bool> RandomSelector::select(const SimulatorBase& sim) {
  const std::size_t n = sim.num_devices();
  const std::size_t k = std::min(k_, n);
  auto perm = rng_.permutation(n);
  std::vector<bool> mask(n, false);
  for (std::size_t i = 0; i < k; ++i) mask[perm[i]] = true;
  return mask;
}

DeadlineSelector::DeadlineSelector(const SimulatorBase& sim, double deadline)
    : deadline_(deadline) {
  FEDRA_EXPECTS(deadline > 0.0);
  est_bandwidth_.reserve(sim.num_devices());
  for (std::size_t i = 0; i < sim.num_devices(); ++i) {
    est_bandwidth_.push_back(sim.trace(i).mean_bandwidth());
  }
}

double DeadlineSelector::estimated_completion(const SimulatorBase& sim,
                                              std::size_t i) const {
  FEDRA_EXPECTS(i < sim.num_devices());
  const DeviceProfile dev = sim.fleet().device(i);
  const double compute = dev.min_compute_time(sim.params().tau);
  const double comm = sim.params().model_bytes / est_bandwidth_[i];
  return compute + comm;
}

std::vector<bool> DeadlineSelector::select(const SimulatorBase& sim) {
  FEDRA_EXPECTS(est_bandwidth_.size() == sim.num_devices());
  const std::size_t n = sim.num_devices();
  std::vector<bool> mask(n, false);
  bool any = false;
  double best_time = 1e300;
  std::size_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = estimated_completion(sim, i);
    if (t <= deadline_) {
      mask[i] = true;
      any = true;
    }
    if (t < best_time) {
      best_time = t;
      best = i;
    }
  }
  if (!any) mask[best] = true;  // a round must still make progress
  return mask;
}

void DeadlineSelector::observe(const IterationResult& result) {
  FEDRA_EXPECTS(result.has_device_outcomes());
  FEDRA_EXPECTS(result.num_device_slots() == est_bandwidth_.size());
  for (std::size_t i = 0; i < result.num_device_slots(); ++i) {
    const DeviceOutcome d = result.outcome(i);
    if (d.participated && d.avg_bandwidth > 0.0) {
      est_bandwidth_[i] = d.avg_bandwidth;
    }
  }
}

}  // namespace fedra
