#include "fl/async_fedavg.hpp"

#include <cmath>

#include "nn/loss.hpp"

namespace fedra {

namespace {
Mlp build_model(const ModelSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  return Mlp(spec.sizes, spec.hidden, rng);
}
}  // namespace

AsyncFedAvgServer::AsyncFedAvgServer(std::vector<FlClient> clients,
                                     const ModelSpec& spec,
                                     AsyncAggregationConfig config,
                                     std::uint64_t seed)
    : clients_(std::move(clients)),
      global_model_(build_model(spec, seed)),
      config_(config) {
  FEDRA_EXPECTS(!clients_.empty());
  FEDRA_EXPECTS(config.base_mix > 0.0 && config.base_mix <= 1.0);
  FEDRA_EXPECTS(config.staleness_decay >= 0.0);
  global_params_ = global_model_.param_values();
}

double AsyncFedAvgServer::mix_for(std::size_t staleness) const {
  return config_.base_mix /
         std::pow(1.0 + static_cast<double>(staleness),
                  config_.staleness_decay);
}

double AsyncFedAvgServer::apply_update(std::size_t client,
                                       const std::vector<Matrix>& based_on,
                                       std::size_t staleness,
                                       const LocalTrainConfig& config,
                                       std::size_t round_index) {
  FEDRA_EXPECTS(client < clients_.size());
  auto update = clients_[client].train_round(based_on, config, round_index);
  const double alpha = mix_for(staleness);
  FEDRA_EXPECTS(update.params.size() == global_params_.size());
  for (std::size_t p = 0; p < global_params_.size(); ++p) {
    Matrix& g = global_params_[p];
    const Matrix& w = update.params[p];
    FEDRA_EXPECTS(g.same_shape(w));
    for (std::size_t j = 0; j < g.size(); ++j) {
      g[j] = (1.0 - alpha) * g[j] + alpha * w[j];
    }
  }
  ++version_;
  return alpha;
}

double AsyncFedAvgServer::global_loss() {
  double weighted = 0.0;
  double total = 0.0;
  for (auto& c : clients_) {
    const auto d = static_cast<double>(c.num_samples());
    weighted += d * c.local_loss(global_params_);
    total += d;
  }
  return weighted / total;
}

double AsyncFedAvgServer::global_accuracy() {
  global_model_.set_param_values(global_params_);
  double correct_weighted = 0.0;
  double total = 0.0;
  for (auto& c : clients_) {
    Matrix logits = global_model_.forward(c.data().features);
    const double acc = accuracy(logits, c.data().labels);
    const auto d = static_cast<double>(c.num_samples());
    correct_weighted += d * acc;
    total += d;
  }
  return correct_weighted / total;
}

}  // namespace fedra
