#include "fl/compression.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fedra {

CompressionStats top_k_sparsify(std::vector<Matrix>& delta,
                                double keep_fraction) {
  FEDRA_EXPECTS(keep_fraction > 0.0 && keep_fraction <= 1.0);
  CompressionStats stats;
  for (const auto& m : delta) stats.total_values += m.size();
  if (stats.total_values == 0) return stats;

  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             keep_fraction * static_cast<double>(stats.total_values))));

  if (keep >= stats.total_values) {
    stats.kept_values = stats.total_values;
    stats.wire_bytes = 8.0 * static_cast<double>(stats.total_values);
    return stats;
  }

  // Threshold = magnitude of the keep-th largest entry (nth_element over
  // a flat copy of magnitudes).
  std::vector<double> mags;
  mags.reserve(stats.total_values);
  for (const auto& m : delta) {
    for (double x : m.flat()) mags.push_back(std::abs(x));
  }
  std::nth_element(mags.begin(),
                   mags.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   mags.end(), std::greater<double>());
  const double threshold = mags[keep - 1];

  // Zero everything strictly below the threshold; among equals keep until
  // the budget is exhausted (deterministic scan order).
  std::size_t kept = 0;
  for (auto& m : delta) {
    for (auto& x : m.flat()) {
      const double a = std::abs(x);
      if (a > threshold || (a == threshold && kept < keep)) {
        if (kept < keep) {
          ++kept;
          continue;
        }
      }
      stats.max_abs_error = std::max(stats.max_abs_error, a);
      x = 0.0;
    }
  }
  stats.kept_values = kept;
  // (u32 index + f32 value) per surviving coordinate.
  stats.wire_bytes = 8.0 * static_cast<double>(kept);
  return stats;
}

CompressionStats quantize_uniform(std::vector<Matrix>& delta, int bits) {
  FEDRA_EXPECTS(bits >= 1 && bits <= 16);
  CompressionStats stats;
  const double levels = std::pow(2.0, bits - 1) - 1.0;  // symmetric range
  for (auto& m : delta) {
    stats.total_values += m.size();
    double max_abs = 0.0;
    for (double x : m.flat()) max_abs = std::max(max_abs, std::abs(x));
    if (max_abs == 0.0) continue;
    if (levels < 1.0) {
      // 1-bit: sign * mean magnitude (signSGD-style).
      double mean_mag = 0.0;
      for (double x : m.flat()) mean_mag += std::abs(x);
      mean_mag /= static_cast<double>(m.size());
      for (auto& x : m.flat()) {
        const double q = x >= 0.0 ? mean_mag : -mean_mag;
        stats.max_abs_error = std::max(stats.max_abs_error, std::abs(x - q));
        x = q;
      }
      continue;
    }
    const double scale = max_abs / levels;
    for (auto& x : m.flat()) {
      const double q = std::round(x / scale) * scale;
      stats.max_abs_error = std::max(stats.max_abs_error, std::abs(x - q));
      x = q;
    }
  }
  stats.kept_values = stats.total_values;
  stats.wire_bytes =
      static_cast<double>(stats.total_values) * bits / 8.0 +
      4.0 * static_cast<double>(delta.size());  // one f32 scale per tensor
  return stats;
}

void apply_delta(std::vector<Matrix>& base,
                 const std::vector<Matrix>& delta) {
  FEDRA_EXPECTS(base.size() == delta.size());
  for (std::size_t p = 0; p < base.size(); ++p) {
    FEDRA_EXPECTS(base[p].same_shape(delta[p]));
    base[p] += delta[p];
  }
}

std::vector<Matrix> compute_delta(const std::vector<Matrix>& a,
                                  const std::vector<Matrix>& b) {
  FEDRA_EXPECTS(a.size() == b.size());
  std::vector<Matrix> delta;
  delta.reserve(a.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    FEDRA_EXPECTS(a[p].same_shape(b[p]));
    Matrix d = a[p];
    d -= b[p];
    delta.push_back(std::move(d));
  }
  return delta;
}

}  // namespace fedra
