#include "fl/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fedra {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  subset_into(indices, out);
  return out;
}

void Dataset::subset_into(const std::vector<std::size_t>& indices,
                          Dataset& out) const {
  FEDRA_EXPECTS(&out != this);
  out.features.resize_reuse(indices.size(), features.cols());
  out.labels.resize(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t src = indices[r];
    FEDRA_EXPECTS(src < size());
    auto dst_row = out.features.row(r);
    auto src_row = features.row(src);
    std::copy(src_row.begin(), src_row.end(), dst_row.begin());
    out.labels[r] = labels[src];
  }
}

Dataset make_gaussian_mixture(std::size_t samples, std::size_t dim,
                              std::size_t classes, Rng& rng,
                              double separation, double noise) {
  FEDRA_EXPECTS(samples > 0 && dim > 0 && classes > 0);
  FEDRA_EXPECTS(separation >= 0.0 && noise >= 0.0);
  // Class means drawn once; unit-normal entries scaled by `separation`.
  std::vector<Matrix> means;
  means.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    means.push_back(Matrix::random_gaussian(1, dim, rng, 0.0, separation));
  }
  Dataset data;
  data.features = Matrix(samples, dim);
  data.labels.resize(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    data.labels[s] = c;
    auto row = data.features.row(s);
    auto mean = means[c].row(0);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = mean[j] + rng.gaussian(0.0, noise);
    }
  }
  return data;
}

std::vector<Dataset> split_iid(const Dataset& data, std::size_t n, Rng& rng) {
  FEDRA_EXPECTS(n > 0 && data.size() >= n);
  auto perm = rng.permutation(data.size());
  std::vector<Dataset> shards;
  shards.reserve(n);
  const std::size_t base = data.size() / n;
  const std::size_t extra = data.size() % n;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    std::vector<std::size_t> idx(perm.begin() + static_cast<std::ptrdiff_t>(offset),
                                 perm.begin() + static_cast<std::ptrdiff_t>(offset + count));
    shards.push_back(data.subset(idx));
    offset += count;
  }
  return shards;
}

std::vector<Dataset> split_dirichlet(const Dataset& data, std::size_t n,
                                     double beta, Rng& rng) {
  FEDRA_EXPECTS(n > 0 && data.size() >= n);
  FEDRA_EXPECTS(beta > 0.0);
  const std::size_t classes =
      1 + *std::max_element(data.labels.begin(), data.labels.end());

  // Group sample indices by class, shuffled within each class.
  std::vector<std::vector<std::size_t>> by_class(classes);
  for (std::size_t s = 0; s < data.size(); ++s) {
    by_class[data.labels[s]].push_back(s);
  }
  for (auto& group : by_class) {
    auto perm = rng.permutation(group.size());
    std::vector<std::size_t> shuffled(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) shuffled[i] = group[perm[i]];
    group = std::move(shuffled);
  }

  std::vector<std::vector<std::size_t>> assignment(n);
  for (auto& group : by_class) {
    // Dirichlet(beta) via normalized Gamma(beta, 1) draws. For beta <= 1
    // use the Ahrens-Dieter-free trick: Gamma(beta) = Gamma(beta+1) * U^(1/beta).
    std::vector<double> shares(n);
    double total = 0.0;
    for (auto& g : shares) {
      // Marsaglia-Tsang for shape >= 1.
      const double shape = beta < 1.0 ? beta + 1.0 : beta;
      const double d = shape - 1.0 / 3.0;
      const double c = 1.0 / std::sqrt(9.0 * d);
      double v, x;
      for (;;) {
        do {
          x = rng.gaussian();
          v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x) break;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) break;
      }
      g = d * v;
      if (beta < 1.0) {
        g *= std::pow(std::max(rng.uniform(), 1e-12), 1.0 / beta);
      }
      total += g;
    }
    FEDRA_ENSURES(total > 0.0);

    // Turn shares into contiguous slices of the shuffled class group.
    std::size_t offset = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto count =
          i + 1 == n ? group.size() - offset
                     : std::min(group.size() - offset,
                                static_cast<std::size_t>(std::llround(
                                    shares[i] / total *
                                    static_cast<double>(group.size()))));
      for (std::size_t j = 0; j < count; ++j) {
        assignment[i].push_back(group[offset + j]);
      }
      offset += count;
    }
  }

  // Guarantee non-empty shards: steal one sample from the largest shard.
  for (std::size_t i = 0; i < n; ++i) {
    if (!assignment[i].empty()) continue;
    auto largest = std::max_element(
        assignment.begin(), assignment.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    FEDRA_ENSURES(largest->size() > 1);
    assignment[i].push_back(largest->back());
    largest->pop_back();
  }

  std::vector<Dataset> shards;
  shards.reserve(n);
  for (auto& idx : assignment) shards.push_back(data.subset(idx));
  return shards;
}

std::vector<Dataset> split_proportional(const Dataset& data,
                                        const std::vector<double>& weights,
                                        Rng& rng) {
  FEDRA_EXPECTS(!weights.empty() && data.size() >= weights.size());
  double total = 0.0;
  for (double w : weights) {
    FEDRA_EXPECTS(w > 0.0);
    total += w;
  }
  auto perm = rng.permutation(data.size());
  std::vector<Dataset> shards;
  shards.reserve(weights.size());
  std::size_t offset = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    std::size_t count;
    if (i + 1 == weights.size()) {
      count = data.size() - offset;
    } else {
      count = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(
                 weights[i] / total * static_cast<double>(data.size()))));
      count = std::min(count, data.size() - offset - (weights.size() - i - 1));
    }
    std::vector<std::size_t> idx(perm.begin() + static_cast<std::ptrdiff_t>(offset),
                                 perm.begin() + static_cast<std::ptrdiff_t>(offset + count));
    shards.push_back(data.subset(idx));
    offset += count;
  }
  return shards;
}

}  // namespace fedra
