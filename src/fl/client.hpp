// A federated client: owns a local dataset and a private model replica,
// and runs tau passes of minibatch SGD from the current global parameters
// (paper Fig. 4: "train the model by tau times"). Clients share nothing
// mutable, so the server can fan them out across the thread pool (CP.3).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fl/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

namespace fedra {

/// Topology shared by the global model and all client replicas.
struct ModelSpec {
  std::vector<std::size_t> sizes;  ///< {in, hidden..., classes}
  Activation hidden = Activation::ReLU;
};

/// Hyper-parameters of local training.
struct LocalTrainConfig {
  double tau = 1.0;           ///< local passes over the data per round
  std::size_t batch_size = 32;
  double learning_rate = 0.05;
};

/// Result of one local round.
struct ClientUpdate {
  std::vector<Matrix> params;  ///< trained local parameters
  std::size_t num_samples = 0; ///< D_i in samples — FedAvg weight
  double avg_loss = 0.0;       ///< mean minibatch loss during training
};

class FlClient {
 public:
  /// `spec.sizes.front()` must equal the dataset dimensionality.
  FlClient(Dataset data, const ModelSpec& spec, std::uint64_t seed);

  std::size_t num_samples() const { return data_.size(); }
  const Dataset& data() const { return data_; }

  /// One round: load global params, run ceil(tau) epochs of minibatch SGD
  /// (fractional tau truncates the final epoch proportionally), return the
  /// update. Deterministic given the client seed and round index.
  ClientUpdate train_round(const std::vector<Matrix>& global_params,
                           const LocalTrainConfig& config,
                           std::size_t round_index);

  /// Capacity-reusing variant: writes the update into `out`, reusing its
  /// parameter matrices' heap blocks (shapes are fixed by the topology, so
  /// after the first round this path performs zero tensor allocations —
  /// the residual the fedavg_round bench used to charge to param_values()).
  void train_round_into(const std::vector<Matrix>& global_params,
                        const LocalTrainConfig& config,
                        std::size_t round_index, ClientUpdate& out);

  /// F_i(w) of Eq. (7): mean loss of `params` on the local data.
  double local_loss(const std::vector<Matrix>& params);

 private:
  Dataset data_;
  Mlp model_;
  std::uint64_t seed_;

  // Per-client training scratch, reused across minibatches and rounds so
  // steady-state local SGD performs no tensor heap allocation. Clients are
  // fanned out one-per-thread, so private scratch needs no locking.
  Workspace ws_;
  Dataset batch_;
  LossResult loss_;
  std::vector<std::size_t> idx_;
};

}  // namespace fedra
