#include "fl/fedavg.hpp"

#include "nn/loss.hpp"
#include "obs/ledger.hpp"
#include "telemetry/telemetry.hpp"

namespace fedra {

namespace {
Mlp build_model(const ModelSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  return Mlp(spec.sizes, spec.hidden, rng);
}
}  // namespace

FedAvgServer::FedAvgServer(std::vector<FlClient> clients,
                           const ModelSpec& spec, std::uint64_t seed)
    : clients_(std::move(clients)), global_model_(build_model(spec, seed)) {
  FEDRA_EXPECTS(!clients_.empty());
  global_params_ = global_model_.param_values();
}

RoundMetrics FedAvgServer::run_round(const LocalTrainConfig& config,
                                     ThreadPool& pool) {
  std::vector<std::size_t> everyone(clients_.size());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  return run_round(config, pool, everyone);
}

RoundMetrics FedAvgServer::run_round(
    const LocalTrainConfig& config, ThreadPool& pool,
    const std::vector<std::size_t>& participants) {
  return run_round(config, pool, participants, participants);
}

RoundMetrics FedAvgServer::run_round(
    const LocalTrainConfig& config, ThreadPool& pool,
    const std::vector<std::size_t>& participants,
    const std::vector<std::size_t>& delivered) {
  // De-duplicate while preserving validity checks.
  std::vector<std::size_t> roster;
  roster.reserve(participants.size());
  std::vector<bool> seen(clients_.size(), false);
  for (std::size_t idx : participants) {
    FEDRA_EXPECTS(idx < clients_.size());
    if (!seen[idx]) {
      seen[idx] = true;
      roster.push_back(idx);
    }
  }
  FEDRA_EXPECTS(!roster.empty());

  // Delivery mask over client indices: every delivered client must have
  // trained (a device cannot upload an update it never computed).
  std::vector<bool> arrived(clients_.size(), false);
  for (std::size_t idx : delivered) {
    FEDRA_EXPECTS(idx < clients_.size());
    FEDRA_EXPECTS(seen[idx]);
    arrived[idx] = true;
  }

  const std::size_t n = roster.size();
  // Round-persistent update slots: grown once, never shrunk, so the
  // parameter matrices inside keep their heap blocks across rounds
  // (train_round_into assigns into them with capacity reuse).
  if (updates_.size() < n) updates_.resize(n);
  std::vector<ClientUpdate>& updates = updates_;
  // Per-device local training is embarrassingly parallel: each client owns
  // its model replica and dataset; `updates` slots are disjoint. Clients
  // whose upload will be lost still train — that compute is the waste the
  // fault bench measures.
  {
    FEDRA_TRACE_SPAN("local_train");
    pool.parallel_for(0, n, [&](std::size_t i) {
      clients_[roster[i]].train_round_into(global_params_, config, round_,
                                           updates[i]);
    });
  }

  FEDRA_TRACE_SPAN("aggregate");
  // Weighted average over the DELIVERED subset: w <- sum_i (D_i / D') w_i
  // where D' renormalizes to the survivors (Eq. 8 weighting restricted to
  // arrivals). A round with no arrivals leaves the global model as-is.
  double total_samples = 0.0;
  std::size_t num_delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!arrived[roster[i]]) continue;
    total_samples += static_cast<double>(updates[i].num_samples);
    ++num_delivered;
  }
  if (num_delivered > 0) {
    FEDRA_ENSURES(total_samples > 0.0);
    // Accumulate into round-persistent scratch, then swap with the global
    // params: both vectors keep their capacity, so steady-state rounds
    // allocate nothing here. Accumulation order matches the original
    // (per-parameter, delivered clients in roster order) bit-for-bit.
    agg_scratch_.resize(global_params_.size());
    for (std::size_t p = 0; p < global_params_.size(); ++p) {
      Matrix& acc = agg_scratch_[p];
      acc.resize_reuse(global_params_[p].rows(), global_params_[p].cols());
      acc.set_zero();
      for (std::size_t i = 0; i < n; ++i) {
        if (!arrived[roster[i]]) continue;
        const auto& u = updates[i];
        const double w =
            static_cast<double>(u.num_samples) / total_samples;
        FEDRA_EXPECTS(u.params[p].same_shape(acc));
        for (std::size_t j = 0; j < acc.size(); ++j) {
          acc[j] += w * u.params[p][j];
        }
      }
    }
    std::swap(global_params_, agg_scratch_);
  }

  FEDRA_TELEMETRY_IF {
    namespace tel = fedra::telemetry;
    static auto lost =
        tel::Telemetry::metrics().counter("fl.lost_updates");
    static auto partial =
        tel::Telemetry::metrics().counter("fl.partial_rounds");
    static auto wasted =
        tel::Telemetry::metrics().counter("fl.wasted_rounds");
    if (num_delivered < n) {
      lost.add(n - num_delivered);
      partial.add();
    }
    if (num_delivered == 0) wasted.add();
  }

  RoundMetrics m;
  m.round = round_++;
  m.num_participants = n;
  m.num_delivered = num_delivered;
  m.global_loss = global_loss();
  m.global_accuracy = global_accuracy();
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) loss_sum += updates[i].avg_loss;
  m.mean_client_loss = loss_sum / static_cast<double>(n);
  FEDRA_TELEMETRY_IF {
    if (obs::RunLedger::enabled()) {
      obs::FlRoundRecord rec;
      rec.round = m.round;
      rec.global_loss = m.global_loss;
      rec.global_accuracy = m.global_accuracy;
      rec.mean_client_loss = m.mean_client_loss;
      rec.num_participants = m.num_participants;
      rec.num_delivered = m.num_delivered;
      obs::RunLedger::record_fl_round(rec);
    }
  }
  return m;
}

std::vector<RoundMetrics> FedAvgServer::train_until(
    const LocalTrainConfig& config, double epsilon, std::size_t max_rounds,
    ThreadPool& pool) {
  FEDRA_EXPECTS(epsilon > 0.0 && max_rounds > 0);
  std::vector<RoundMetrics> history;
  for (std::size_t k = 0; k < max_rounds; ++k) {
    history.push_back(run_round(config, pool));
    if (history.back().global_loss < epsilon) break;  // constraint (10)
  }
  return history;
}

void FedAvgServer::restore(std::vector<Matrix> global_params,
                           std::size_t round) {
  FEDRA_EXPECTS(global_params.size() == global_params_.size());
  for (std::size_t p = 0; p < global_params.size(); ++p) {
    FEDRA_EXPECTS(global_params[p].same_shape(global_params_[p]));
  }
  global_params_ = std::move(global_params);
  round_ = round;
}

double FedAvgServer::global_loss() {
  // F(w) = sum_n D_n F_n(w) / sum_n D_n (Eq. 8).
  double weighted = 0.0;
  double total = 0.0;
  for (auto& c : clients_) {
    const auto d = static_cast<double>(c.num_samples());
    weighted += d * c.local_loss(global_params_);
    total += d;
  }
  return weighted / total;
}

double FedAvgServer::global_accuracy() {
  global_model_.set_param_values(global_params_);
  double correct_weighted = 0.0;
  double total = 0.0;
  for (auto& c : clients_) {
    const Matrix& logits =
        global_model_.forward_cached(c.data().features, eval_ws_);
    const double acc = accuracy(logits, c.data().labels);
    const auto d = static_cast<double>(c.num_samples());
    correct_weighted += d * acc;
    total += d;
  }
  return correct_weighted / total;
}

}  // namespace fedra
