// Synthetic classification data and federated (non-)IID sharding.
//
// The paper trains real models on-device but never depends on a specific
// dataset; what matters for reproducing constraint (10) is a genuine loss
// trajectory under FedAvg. We use a Gaussian-mixture classification task:
// class c has a random mean vector, samples are mean + isotropic noise.
// Non-IID sharding follows the common Dirichlet(beta) label-skew protocol.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace fedra {

struct Dataset {
  Matrix features;                  ///< (samples x dim)
  std::vector<std::size_t> labels;  ///< class index per sample

  std::size_t size() const { return labels.size(); }
  std::size_t dim() const { return features.cols(); }

  /// Rows of `features`/`labels` selected by index (bounds-checked).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Capacity-reusing subset: writes into `out`, growing its buffers only
  /// when a larger batch than any seen before arrives. `out` must not be
  /// `*this`. Bit-identical to subset().
  void subset_into(const std::vector<std::size_t>& indices,
                   Dataset& out) const;
};

/// Gaussian-mixture task: `classes` clusters in `dim` dimensions with unit
/// class-mean spread (`separation` scales it) and per-sample noise sigma.
Dataset make_gaussian_mixture(std::size_t samples, std::size_t dim,
                              std::size_t classes, Rng& rng,
                              double separation = 2.0, double noise = 1.0);

/// Even IID split into n shards (sizes differ by at most 1).
std::vector<Dataset> split_iid(const Dataset& data, std::size_t n, Rng& rng);

/// Dirichlet label-skew split: for each class, the per-device share of its
/// samples is drawn from Dirichlet(beta,...,beta). Small beta = highly
/// non-IID (each device sees few classes); large beta approaches IID.
/// Every shard is guaranteed at least one sample.
std::vector<Dataset> split_dirichlet(const Dataset& data, std::size_t n,
                                     double beta, Rng& rng);

/// Proportional split: shard i receives a share proportional to weights[i]
/// (used to match the paper's D_i ~ U(50,100) MB heterogeneity: dataset
/// rows stand in for bytes at a fixed bytes-per-sample).
std::vector<Dataset> split_proportional(const Dataset& data,
                                        const std::vector<double>& weights,
                                        Rng& rng);

}  // namespace fedra
