// Client selection for federated rounds (Nishio & Yonetani's FedCS line,
// cited in the paper's related work). Selection is orthogonal to the
// frequency control the paper studies: a selector decides WHO joins each
// round, the controller decides HOW FAST the participants compute. The
// selection bench combines both and measures the time/accuracy trade.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulator_base.hpp"
#include "util/rng.hpp"

namespace fedra {

class ClientSelector {
 public:
  virtual ~ClientSelector() = default;

  /// Participation mask for the iteration starting at sim.now(); at least
  /// one entry must be true.
  virtual std::vector<bool> select(const SimulatorBase& sim) = 0;

  /// Feedback after the round (realized bandwidths etc.).
  virtual void observe(const IterationResult& result) { (void)result; }

  virtual std::string name() const = 0;
};

/// Everyone, every round — the paper's (and FedAvg's) default.
class AllSelector final : public ClientSelector {
 public:
  std::vector<bool> select(const SimulatorBase& sim) override;
  std::string name() const override { return "all"; }
};

/// Uniformly random subset of k clients per round (classic FedAvg client
/// sampling).
class RandomSelector final : public ClientSelector {
 public:
  RandomSelector(std::size_t k, std::uint64_t seed);
  std::vector<bool> select(const SimulatorBase& sim) override;
  std::string name() const override { return "random"; }

 private:
  std::size_t k_;
  Rng rng_;
};

/// FedCS-style deadline selection: include every device whose ESTIMATED
/// round completion (compute at delta_max + upload at the estimated
/// bandwidth) fits within `deadline` seconds; estimates start at the
/// trace means and are refreshed with realized bandwidths (same
/// information model as the Heuristic controller). If nobody fits, the
/// single fastest-estimated device is drafted so the round can proceed.
class DeadlineSelector final : public ClientSelector {
 public:
  DeadlineSelector(const SimulatorBase& sim, double deadline);
  std::vector<bool> select(const SimulatorBase& sim) override;
  void observe(const IterationResult& result) override;
  std::string name() const override { return "deadline"; }

  /// Estimated completion time of device i at full speed.
  double estimated_completion(const SimulatorBase& sim, std::size_t i) const;

 private:
  double deadline_;
  std::vector<double> est_bandwidth_;
};

}  // namespace fedra
