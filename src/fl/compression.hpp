// Model-update compression for communication-efficient federated learning
// (Konecny et al., the paper's refs [2]/[8]). Two classic schemes:
//
//   * top-k sparsification of the update DELTA (w_local - w_global): only
//     the k largest-magnitude coordinates are transmitted;
//   * uniform b-bit quantization of the delta per tensor (symmetric range
//     scaling).
//
// Both operate on deltas so the error vanishes as training converges.
// compressed_bytes() estimates the wire size, which plugs straight into
// CostParams::model_bytes — the compression bench measures the resulting
// cost/accuracy frontier with the simulator pricing the uploads.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace fedra {

struct CompressionStats {
  std::size_t total_values = 0;
  std::size_t kept_values = 0;   ///< non-zeros transmitted (top-k) or all
  double wire_bytes = 0.0;       ///< estimated transmitted bytes
  double max_abs_error = 0.0;    ///< reconstruction error vs the input
};

/// Keeps the `keep_fraction` largest-|x| entries across ALL tensors of
/// the update (global top-k), zeroing the rest IN PLACE. Returns stats;
/// wire size counts (index, value) pairs at 4 + 4 bytes each (float
/// payloads on the wire).
CompressionStats top_k_sparsify(std::vector<Matrix>& delta,
                                double keep_fraction);

/// Uniform symmetric quantization to `bits` in [1, 16] per tensor:
/// x -> round(x / s) * s with s = max|x| / (2^(bits-1) - 1), applied IN
/// PLACE. Wire size counts bits per value plus one float scale per tensor.
CompressionStats quantize_uniform(std::vector<Matrix>& delta, int bits);

/// Applies `delta` to `base` (base += delta) — the decompression side.
void apply_delta(std::vector<Matrix>& base, const std::vector<Matrix>& delta);

/// delta = a - b, elementwise over aligned tensor lists.
std::vector<Matrix> compute_delta(const std::vector<Matrix>& a,
                                  const std::vector<Matrix>& b);

}  // namespace fedra
