// Asynchronous model aggregation with staleness-weighted mixing — the
// server-side counterpart of AsyncFlSimulator. On each arriving update
// the global model moves toward the client's model by
//
//   alpha(s) = base_mix / (1 + staleness)^staleness_decay,
//
// the standard polynomial staleness discount (Xie et al.'s FedAsync
// family): fresh updates move the model by base_mix, stale ones
// proportionally less, preventing long-delayed gradients from dragging
// the model backwards.
#pragma once

#include <cstddef>
#include <vector>

#include "fl/client.hpp"

namespace fedra {

struct AsyncAggregationConfig {
  double base_mix = 0.5;        ///< alpha(0)
  double staleness_decay = 0.5; ///< polynomial exponent
};

class AsyncFedAvgServer {
 public:
  AsyncFedAvgServer(std::vector<FlClient> clients, const ModelSpec& spec,
                    AsyncAggregationConfig config, std::uint64_t seed);

  std::size_t num_clients() const { return clients_.size(); }
  std::size_t version() const { return version_; }
  const std::vector<Matrix>& global_params() const { return global_params_; }

  /// Mixing coefficient for a given staleness.
  double mix_for(std::size_t staleness) const;

  /// One async arrival from `client`: the client trains from the CURRENT
  /// global model... except the whole point of async is that it trained
  /// from an older one. `based_on` is the snapshot the client pulled;
  /// the round index seeds the client's minibatch stream. Returns the
  /// applied mixing coefficient.
  double apply_update(std::size_t client, const std::vector<Matrix>& based_on,
                      std::size_t staleness, const LocalTrainConfig& config,
                      std::size_t round_index);

  /// Snapshot of the current global model (what a pulling device gets).
  std::vector<Matrix> snapshot() const { return global_params_; }

  double global_loss();
  double global_accuracy();

 private:
  std::vector<FlClient> clients_;
  Mlp global_model_;
  std::vector<Matrix> global_params_;
  AsyncAggregationConfig config_;
  std::size_t version_ = 0;
};

}  // namespace fedra
