// FedAvg parameter server (McMahan et al., the aggregation rule the paper's
// system runs). Each round: broadcast global params, every client trains
// locally for tau passes (fanned out over the thread pool — clients own
// their replicas so rounds are data-race-free), aggregate weighted by D_n
// (Eq. 8's weights), track the global loss for constraint (10).
#pragma once

#include <cstddef>
#include <vector>

#include "fl/client.hpp"
#include "util/thread_pool.hpp"

namespace fedra {

struct RoundMetrics {
  std::size_t round = 0;
  double global_loss = 0.0;     ///< F(w) of Eq. (8) after aggregation
  double global_accuracy = 0.0; ///< on the union of client data
  double mean_client_loss = 0.0;
  std::size_t num_participants = 0;  ///< clients that trained this round
  std::size_t num_delivered = 0;     ///< updates that reached the server
};

class FedAvgServer {
 public:
  /// Builds the global model and takes ownership of the clients.
  FedAvgServer(std::vector<FlClient> clients, const ModelSpec& spec,
               std::uint64_t seed);

  std::size_t num_clients() const { return clients_.size(); }

  const std::vector<Matrix>& global_params() const { return global_params_; }

  /// Rounds completed so far (clients key their local SGD streams on it).
  std::size_t round() const { return round_; }

  /// Restores a (global params, round counter) snapshot taken by
  /// fedra::ckpt. Parameter shapes must match the model topology; client
  /// datasets and seeds are rebuilt by the caller, so a restored server
  /// continues the round sequence bit-exactly.
  void restore(std::vector<Matrix> global_params, std::size_t round);

  /// Runs one synchronized FedAvg round; returns its metrics.
  RoundMetrics run_round(const LocalTrainConfig& config, ThreadPool& pool);

  /// Partial-participation round (client selection): only the listed
  /// clients train; the new global model is the D_n-weighted average of
  /// THEIR updates (standard FedAvg with client sampling). Indices must
  /// be valid and non-empty; duplicates are ignored.
  RoundMetrics run_round(const LocalTrainConfig& config, ThreadPool& pool,
                         const std::vector<std::size_t>& participants);

  /// Fault-tolerant round: every client in `participants` trains (and
  /// spends the compute), but only the updates of clients also listed in
  /// `delivered` reach the server — crashed/dropped/timed-out uploads are
  /// lost. The new global model is the D_n-weighted average over the
  /// DELIVERED subset only (the weights renormalize to the survivors,
  /// keeping the Eq. 8 estimator unbiased over arrivals). `delivered`
  /// must be a subset of `participants`; when it is empty the round is
  /// wasted and the global model is unchanged.
  RoundMetrics run_round(const LocalTrainConfig& config, ThreadPool& pool,
                         const std::vector<std::size_t>& participants,
                         const std::vector<std::size_t>& delivered);

  /// Runs rounds until F(w) < epsilon (constraint 10) or max_rounds.
  /// Returns all round metrics.
  std::vector<RoundMetrics> train_until(const LocalTrainConfig& config,
                                        double epsilon,
                                        std::size_t max_rounds,
                                        ThreadPool& pool);

  /// F(w) of Eq. (8): data-size-weighted mean of client losses.
  double global_loss();

  /// Accuracy of the global model over the union of client datasets.
  double global_accuracy();

 private:
  std::vector<FlClient> clients_;
  Mlp global_model_;
  std::vector<Matrix> global_params_;
  std::size_t round_ = 0;

  // Server-side scratch reused across rounds: the aggregation accumulators
  // (swapped with global_params_ each round, so both sides keep their
  // capacity), the per-slot client updates (their parameter matrices keep
  // their heap blocks via train_round_into), and the evaluation workspace
  // for global_accuracy().
  std::vector<Matrix> agg_scratch_;
  std::vector<ClientUpdate> updates_;
  Workspace eval_ws_;
};

}  // namespace fedra
