#include "fl/client.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "telemetry/telemetry.hpp"

namespace fedra {

namespace {
Mlp build_model(const ModelSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  return Mlp(spec.sizes, spec.hidden, rng);
}
}  // namespace

FlClient::FlClient(Dataset data, const ModelSpec& spec, std::uint64_t seed)
    : data_(std::move(data)), model_(build_model(spec, seed)), seed_(seed) {
  FEDRA_EXPECTS(data_.size() > 0);
  FEDRA_EXPECTS(!spec.sizes.empty() && spec.sizes.front() == data_.dim());
}

ClientUpdate FlClient::train_round(const std::vector<Matrix>& global_params,
                                   const LocalTrainConfig& config,
                                   std::size_t round_index) {
  ClientUpdate update;
  train_round_into(global_params, config, round_index, update);
  return update;
}

void FlClient::train_round_into(const std::vector<Matrix>& global_params,
                                const LocalTrainConfig& config,
                                std::size_t round_index, ClientUpdate& out) {
  FEDRA_EXPECTS(config.tau > 0.0);
  FEDRA_EXPECTS(config.batch_size > 0);
  namespace tel = fedra::telemetry;
  // Histogram-only (runs on pool workers at per-client frequency; a span
  // per client would swamp the buffer on large rosters).
  tel::Histogram train_hist;
  FEDRA_TELEMETRY_IF {
    static const auto h =
        tel::Telemetry::metrics().histogram("fl.client_train_us");
    train_hist = h;
  }
  tel::ScopedTimer round_timer(train_hist);
  model_.set_param_values(global_params);
  Sgd opt(model_, config.learning_rate);

  // Per-round RNG stream keeps rounds independent yet reproducible.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (round_index + 1)));

  const std::size_t n = data_.size();
  // tau passes over the data = ceil(tau * n / batch) minibatches.
  const auto total_batches = static_cast<std::size_t>(std::ceil(
      config.tau * static_cast<double>(n) /
      static_cast<double>(config.batch_size)));

  out.num_samples = n;
  double loss_acc = 0.0;
  std::size_t batches_done = 0;
  while (batches_done < total_batches) {
    auto perm = rng.permutation(n);
    for (std::size_t start = 0;
         start < n && batches_done < total_batches;
         start += config.batch_size, ++batches_done) {
      const std::size_t end = std::min(start + config.batch_size, n);
      idx_.assign(perm.begin() + static_cast<std::ptrdiff_t>(start),
                  perm.begin() + static_cast<std::ptrdiff_t>(end));
      data_.subset_into(idx_, batch_);
      opt.zero_grad();
      // batch_ is a member, so it outlives the backward pass — the cached
      // layers may hold pointers into it (workspace contract).
      const Matrix& logits = model_.forward_cached(batch_.features, ws_);
      softmax_cross_entropy_into(logits, batch_.labels, loss_);
      model_.backward_cached(loss_.grad, ws_);
      opt.step();
      loss_acc += loss_.value;
    }
  }
  out.avg_loss =
      batches_done > 0 ? loss_acc / static_cast<double>(batches_done) : 0.0;
  // Copy the trained parameters into the caller's (capacity-reused)
  // buffers instead of deep-allocating a fresh snapshot every round.
  const auto ps = model_.params();
  out.params.resize(ps.size());
  for (std::size_t p = 0; p < ps.size(); ++p) {
    out.params[p].assign_from(*ps[p]);
  }
}

double FlClient::local_loss(const std::vector<Matrix>& params) {
  model_.set_param_values(params);
  const Matrix& logits = model_.forward_cached(data_.features, ws_);
  softmax_cross_entropy_into(logits, data_.labels, loss_);
  return loss_.value;
}

}  // namespace fedra
