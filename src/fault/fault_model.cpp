#include "fault/fault_model.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fedra::fault {

namespace {

/// Order-free hash combine: the per-(iteration, device) stream seed must
/// not depend on draw order or device count, only on the identifiers.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  return sm.next();
}

double clamp_prob(double p) { return std::clamp(p, 0.0, 1.0); }

}  // namespace

bool FaultConfig::any_enabled() const {
  return dropout_prob > 0.0 || straggler_prob > 0.0 || crash_prob > 0.0 ||
         blackout_prob > 0.0 || upload_failure_prob > 0.0;
}

FaultConfig FaultConfig::scaled(double factor) const {
  FEDRA_EXPECTS(factor >= 0.0);
  FaultConfig out = *this;
  out.dropout_prob = clamp_prob(dropout_prob * factor);
  out.straggler_prob = clamp_prob(straggler_prob * factor);
  out.crash_prob = clamp_prob(crash_prob * factor);
  out.blackout_prob = clamp_prob(blackout_prob * factor);
  out.upload_failure_prob = clamp_prob(upload_failure_prob * factor);
  return out;
}

FaultModel::FaultModel(FaultConfig config, std::uint64_t seed)
    : config_(config), seed_(seed), enabled_(true) {
  FEDRA_EXPECTS(config.dropout_prob >= 0.0 && config.dropout_prob <= 1.0);
  FEDRA_EXPECTS(config.straggler_prob >= 0.0 && config.straggler_prob <= 1.0);
  FEDRA_EXPECTS(config.crash_prob >= 0.0 && config.crash_prob <= 1.0);
  FEDRA_EXPECTS(config.rejoin_prob >= 0.0 && config.rejoin_prob <= 1.0);
  FEDRA_EXPECTS(config.blackout_prob >= 0.0 && config.blackout_prob <= 1.0);
  FEDRA_EXPECTS(config.upload_failure_prob >= 0.0 &&
                config.upload_failure_prob <= 1.0);
  FEDRA_EXPECTS(config.min_slowdown >= 1.0);
  FEDRA_EXPECTS(config.max_slowdown >= config.min_slowdown);
  FEDRA_EXPECTS(config.blackout_duration_s >= 0.0);
  FEDRA_EXPECTS(config.blackout_max_offset_s >= 0.0);
  FEDRA_EXPECTS(config.retry_backoff_s >= 0.0);
}

DeviceFault FaultModel::draw_device(std::size_t iteration, std::size_t device,
                                    bool was_crashed,
                                    bool* now_crashed) const {
  Rng rng(mix(mix(seed_, iteration), device));
  DeviceFault f;
  f.retry_backoff_s = config_.retry_backoff_s;

  // Crash chain first: a down device draws nothing else this round.
  const bool crashed_now = was_crashed ? !rng.bernoulli(config_.rejoin_prob)
                                       : rng.bernoulli(config_.crash_prob);
  *now_crashed = crashed_now;
  if (crashed_now) {
    f.crashed = true;
    return f;
  }

  if (config_.dropout_prob > 0.0 && rng.bernoulli(config_.dropout_prob)) {
    f.dropout = true;
    // Not too close to either end: a vanish at 0 is a crash, at 1 a no-op.
    f.dropout_frac = rng.uniform(0.05, 0.95);
  }
  if (config_.straggler_prob > 0.0 && rng.bernoulli(config_.straggler_prob)) {
    f.compute_slowdown =
        rng.uniform(config_.min_slowdown, config_.max_slowdown);
    f.upload_slowdown =
        rng.uniform(config_.min_slowdown, config_.max_slowdown);
  }
  if (config_.blackout_prob > 0.0 && rng.bernoulli(config_.blackout_prob)) {
    f.blackout_offset = rng.uniform(0.0, config_.blackout_max_offset_s);
    f.blackout_duration = config_.blackout_duration_s * rng.uniform(0.5, 1.5);
  }
  if (config_.upload_failure_prob > 0.0) {
    while (f.failed_uploads <= config_.max_retries &&
           rng.bernoulli(config_.upload_failure_prob)) {
      ++f.failed_uploads;
    }
    f.upload_exhausted = f.failed_uploads > config_.max_retries;
  }
  return f;
}

void FaultModel::draw_range(std::size_t iteration, std::size_t begin,
                            std::size_t end,
                            const std::vector<bool>& was_crashed,
                            RoundFaults* round,
                            std::vector<bool>* now_crashed) const {
  FEDRA_EXPECTS(round != nullptr && begin <= end);
  FEDRA_EXPECTS(round->devices.size() >= end);
  FEDRA_EXPECTS(now_crashed == nullptr || now_crashed->size() >= end);
  if (!enabled()) return;
  for (std::size_t i = begin; i < end; ++i) {
    const bool was = i < was_crashed.size() && was_crashed[i];
    bool now = false;
    round->devices[i] = draw_device(iteration, i, was, &now);
    if (now_crashed != nullptr) (*now_crashed)[i] = now;
  }
}

RoundFaults FaultModel::draw_round(std::size_t iteration,
                                   std::size_t num_devices,
                                   std::vector<bool>* crash_state) const {
  RoundFaults round;
  round.devices.resize(num_devices);
  if (!enabled()) return round;
  if (crash_state != nullptr && crash_state->size() < num_devices) {
    crash_state->resize(num_devices);
  }
  // When crash_state aliases crashed_ (advance), each index is read from
  // the old state before it is overwritten, so the alias is benign.
  draw_range(iteration, 0, num_devices, crashed_, &round, crash_state);
  return round;
}

RoundFaults FaultModel::peek(std::size_t iteration,
                             std::size_t num_devices) const {
  return draw_round(iteration, num_devices, nullptr);
}

RoundFaults FaultModel::advance(std::size_t iteration,
                                std::size_t num_devices) {
  return draw_round(iteration, num_devices, &crashed_);
}

std::size_t FaultModel::num_crashed() const {
  return static_cast<std::size_t>(
      std::count(crashed_.begin(), crashed_.end(), true));
}

}  // namespace fedra::fault
