// Fault injection for federated iterations (fedra::fault).
//
// Real mobile FL deployments are dominated by client churn: devices drop
// off mid-round, background load turns them into stragglers, radios lose
// coverage, uploads fail and must be retried. The paper's synchronized
// iteration (Eq. 5) is gated by the slowest device, so these failure
// modes are exactly what a resource-allocation policy must be robust to
// — yet a fault-free simulator never shows them to the learner.
//
// FaultModel draws a per-device fault assignment for every iteration:
//
//   dropout        — the device vanishes mid-round at a random fraction of
//                    its timeline; its update is lost, the energy it spent
//                    up to that point is still charged;
//   straggler      — multiplicative compute/upload degradation for one
//                    round (background load, thermal throttling);
//   crash + rejoin — a two-state Markov chain per device: a crashed device
//                    sits out whole rounds until it rejoins;
//   blackout       — a bandwidth blackout window (radio outage) applied to
//                    the device's trace for this round;
//   upload failure — each upload attempt fails independently; failures are
//                    retried with exponential backoff up to `max_retries`
//                    times, after which the update is lost.
//
// Determinism: every draw comes from an Rng seeded by a hash of
// (model seed, iteration, device), so the fault sequence is a pure
// function of the seed and the crash-state history — independent of how
// many devices exist elsewhere, of call interleaving, and of platform.
// Same seed + same config => bit-identical fault sequences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace fedra::fault {

/// Per-round, per-device fault probabilities and magnitudes. All
/// probabilities are evaluated independently each round; 0 disables the
/// corresponding fault class.
struct FaultConfig {
  /// P(device vanishes mid-round). The vanish point is uniform over the
  /// device's round timeline.
  double dropout_prob = 0.0;
  /// P(device is a straggler this round); slowdown factors are drawn
  /// uniformly from [min_slowdown, max_slowdown] for compute and upload
  /// independently.
  double straggler_prob = 0.0;
  double min_slowdown = 1.5;
  double max_slowdown = 4.0;
  /// Crash-and-rejoin Markov chain: healthy -> crashed with crash_prob,
  /// crashed -> healthy with rejoin_prob, evaluated once per round.
  double crash_prob = 0.0;
  double rejoin_prob = 0.25;
  /// P(a bandwidth blackout window hits this device's round). The window
  /// starts uniformly in [0, blackout_max_offset_s] after the round start
  /// and lasts blackout_duration_s * U(0.5, 1.5).
  double blackout_prob = 0.0;
  double blackout_duration_s = 30.0;
  double blackout_max_offset_s = 30.0;
  /// P(one upload attempt fails). Failed attempts back off
  /// retry_backoff_s * 2^k before attempt k+1; after max_retries retries
  /// the update is abandoned.
  double upload_failure_prob = 0.0;
  std::size_t max_retries = 2;
  double retry_backoff_s = 1.0;

  /// True when any fault class has non-zero probability.
  bool any_enabled() const;

  /// Copy with every probability multiplied by `factor` (clamped to 1);
  /// the knob the fault bench sweeps to grade failure intensity.
  FaultConfig scaled(double factor) const;
};

/// Fault assignment of one device in one round. Default-constructed =
/// healthy (no fault).
struct DeviceFault {
  bool crashed = false;       ///< out for the whole round
  bool dropout = false;       ///< vanishes mid-round
  double dropout_frac = 1.0;  ///< fraction of its timeline completed at vanish
  double compute_slowdown = 1.0;
  double upload_slowdown = 1.0;
  double blackout_offset = 0.0;    ///< seconds after round start
  double blackout_duration = 0.0;  ///< 0 = no blackout
  std::size_t failed_uploads = 0;  ///< failed attempts before success/abandon
  bool upload_exhausted = false;   ///< all retries failed; update lost
  double retry_backoff_s = 1.0;    ///< base of the exponential backoff

  /// True when this assignment perturbs the device's round in any way.
  bool faulty() const {
    return crashed || dropout || compute_slowdown != 1.0 ||
           upload_slowdown != 1.0 || blackout_duration > 0.0 ||
           failed_uploads > 0 || upload_exhausted;
  }
};

/// Fault assignment of one full round.
struct RoundFaults {
  std::vector<DeviceFault> devices;

  bool any() const {
    for (const auto& d : devices) {
      if (d.faulty()) return true;
    }
    return false;
  }
};

class FaultModel {
 public:
  /// Disabled model: never injects anything. This is the default fault
  /// context of StepOptions, so `step(freqs, {})` is fault-free.
  FaultModel() = default;

  FaultModel(FaultConfig config, std::uint64_t seed);

  /// False for default-constructed models and configs with every
  /// probability zero.
  bool enabled() const { return enabled_ && config_.any_enabled(); }
  const FaultConfig& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }

  /// Draws the fault assignment for `iteration` WITHOUT evolving the
  /// crash chain (used by previews / dry runs).
  RoundFaults peek(std::size_t iteration, std::size_t num_devices) const;

  /// Batched range draw: fills devices [begin, end) of `iteration`'s
  /// assignment into round->devices (sized >= end), reading the prior
  /// crash state from `was_crashed` (indices past its size = healthy) and
  /// writing the evolved state into `now_crashed` (sized >= end) when
  /// non-null. Every device is a pure function of (seed, iteration,
  /// device, its own prior crash bit), so disjoint ranges commute: any
  /// shard schedule produces the same assignment bitwise as one
  /// sequential draw_range(0, n). No-op when the model is disabled.
  /// NOTE: now_crashed is bit-packed (std::vector<bool>), so concurrent
  /// shard-parallel writers must either pass nullptr or use ranges
  /// aligned to 64-device multiples.
  void draw_range(std::size_t iteration, std::size_t begin, std::size_t end,
                  const std::vector<bool>& was_crashed, RoundFaults* round,
                  std::vector<bool>* now_crashed) const;

  /// Draws the fault assignment for `iteration` and advances the crash
  /// chain. Call once per real simulator step, in iteration order.
  RoundFaults advance(std::size_t iteration, std::size_t num_devices);

  /// Clears the crash chain (all devices healthy), e.g. at episode reset.
  void reset() { crashed_.clear(); }

  /// Devices currently down (crash chain state).
  std::size_t num_crashed() const;

  // Crash-chain snapshot/restore for checkpointing (fedra::ckpt). The
  // chain is the ONLY mutable state — everything else is a pure function
  // of (seed, iteration, device) — so restoring it resumes the fault
  // sequence bit-exactly.
  const std::vector<bool>& crash_state() const { return crashed_; }
  void set_crash_state(std::vector<bool> state) { crashed_ = std::move(state); }

 private:
  DeviceFault draw_device(std::size_t iteration, std::size_t device,
                          bool was_crashed, bool* now_crashed) const;
  RoundFaults draw_round(std::size_t iteration, std::size_t num_devices,
                         std::vector<bool>* crash_state) const;

  FaultConfig config_;
  std::uint64_t seed_ = 0;
  bool enabled_ = false;
  std::vector<bool> crashed_;  ///< crash-chain state, lazily sized
};

}  // namespace fedra::fault
