// Per-component checkpoint codecs: each pair of save_x / load_x functions
// serializes ONE kind of experiment state into / out of a section payload
// (a ByteWriter / ByteReader). The Checkpoint facade (checkpoint.hpp)
// composes them into full experiment snapshots; tests exercise them
// individually.
//
// Conventions:
//   - load_x restores INTO an already-constructed object of matching
//     topology (networks, optimizers and buffers are rebuilt from the
//     experiment config by the caller; the codec carries only the mutable
//     state). A shape/topology mismatch throws
//     CkptError(Errc::kStateMismatch);
//   - malformed or short payloads surface as CkptError(Errc::kMalformed)
//     — the ByteReader bounds checks guarantee no out-of-bounds reads;
//   - every float is stored as raw IEEE-754 bits, so restored state is
//     bit-identical to what was saved.
#pragma once

#include <cstddef>

#include "ckpt/format.hpp"
#include "env/fl_env.hpp"
#include "env/normalizer.hpp"
#include "fault/fault_model.hpp"
#include "nn/optimizer.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"
#include "sim/simulator_base.hpp"
#include "util/rng.hpp"

namespace fedra::ckpt {

/// Runs `fn` and converts any SerializeError escaping it into
/// CkptError(kMalformed) — the boundary between raw codec errors and the
/// subsystem's typed surface.
template <typename Fn>
auto decode_guard(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const SerializeError& e) {
    throw CkptError(Errc::kMalformed, e.what());
  }
}

// RNG stream position (xoshiro words + gaussian cache).
void save_rng(ByteWriter& out, const Rng& rng);
void load_rng(ByteReader in, Rng& rng);

// Welford running moments of a RunningNormalizer; dimension must match.
void save_normalizer(ByteWriter& out, const RunningNormalizer& n);
void load_normalizer(ByteReader in, RunningNormalizer& n);

// A parameter list (e.g. GaussianPolicy::params() or
// Sequential::param_values()). load_params writes through the pointers;
// count and shapes must match.
void save_params(ByteWriter& out, const std::vector<Matrix*>& params);
void save_params(ByteWriter& out, const std::vector<Matrix>& params);
void load_params(ByteReader in, const std::vector<Matrix*>& params);
std::vector<Matrix> load_param_values(ByteReader in);

// Adam step counter + first/second moments.
void save_adam(ByteWriter& out, const Adam& opt);
void load_adam(ByteReader in, Adam& opt);

// Rollout buffer contents (possibly mid-fill); capacity must match.
void save_rollout(ByteWriter& out, const RolloutBuffer& buffer);
void load_rollout(ByteReader in, RolloutBuffer& buffer);

// Fault-model crash chain. The target model must have the same seed the
// snapshot was taken from (the draw stream is keyed on it).
void save_fault_model(ByteWriter& out, const fault::FaultModel& model);
void load_fault_model(ByteReader in, fault::FaultModel& model);

// Simulator clock + round counter (the "trace cursor": traces are
// stateless functions of time, so the clock IS the cursor).
void save_sim_clock(ByteWriter& out, const SimulatorBase& sim);
void load_sim_clock(ByteReader in, SimulatorBase& sim);

// Full per-device outcome of one iteration (fault-aware state rebuilds).
void save_iteration_result(ByteWriter& out, const IterationResult& r);
IterationResult load_iteration_result(ByteReader& in);

// FlEnv mid-episode state: sim clock, episode step counter, last result,
// fault-model crash chain.
void save_env(ByteWriter& out, const FlEnv& env);
void load_env(ByteReader in, FlEnv& env);

// PPO agent: theta_a, theta_a^old, theta_v, and both Adam states, written
// as sections "<prefix>.actor", "<prefix>.actor_old", "<prefix>.critic",
// "<prefix>.actor_opt", "<prefix>.critic_opt".
void save_ppo_agent(Writer& out, PpoAgent& agent,
                    const std::string& prefix = "ppo");
void load_ppo_agent(const Reader& in, PpoAgent& agent,
                    const std::string& prefix = "ppo");

}  // namespace fedra::ckpt
