#include "ckpt/format.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

namespace fedra::ckpt {

namespace {

constexpr std::size_t kMaxSections = 4096;
constexpr std::size_t kMaxNameLen = 255;

/// Fixed header bytes before the variable-length table.
constexpr std::size_t kFixedHeader = 4 + 4 + 4 + 8;
/// Per-section table bytes excluding the name.
constexpr std::size_t kTableEntryFixed = 2 + 8 + 8 + 4;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void fail(Errc code, const std::string& what) {
  throw CkptError(code, what);
}

}  // namespace

const char* errc_name(Errc code) {
  switch (code) {
    case Errc::kIo: return "io-error";
    case Errc::kBadMagic: return "bad-magic";
    case Errc::kBadVersion: return "bad-version";
    case Errc::kTruncated: return "truncated";
    case Errc::kCrcMismatch: return "crc-mismatch";
    case Errc::kMissingSection: return "missing-section";
    case Errc::kMalformed: return "malformed";
    case Errc::kStateMismatch: return "state-mismatch";
  }
  return "unknown";
}

CkptError::CkptError(Errc code, const std::string& what)
    : std::runtime_error(std::string("ckpt [") + errc_name(code) + "]: " +
                         what),
      code_(code) {}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// --- Writer ---------------------------------------------------------------

ByteWriter& Writer::add(std::string name) {
  if (name.empty() || name.size() > kMaxNameLen) {
    fail(Errc::kMalformed, "section name must be 1..255 bytes");
  }
  for (const auto& [existing, payload] : sections_) {
    (void)payload;
    if (existing == name) {
      fail(Errc::kMalformed, "duplicate section: " + name);
    }
  }
  if (sections_.size() >= kMaxSections) {
    fail(Errc::kMalformed, "too many sections");
  }
  sections_.emplace_back(std::move(name), ByteWriter{});
  return sections_.back().second;
}

std::string Writer::encode() const {
  std::size_t header_size = kFixedHeader;
  for (const auto& [name, payload] : sections_) {
    (void)payload;
    header_size += kTableEntryFixed + name.size();
  }
  header_size += 4;  // header CRC

  std::uint64_t total = header_size;
  for (const auto& [name, payload] : sections_) {
    (void)name;
    total += payload.size();
  }

  ByteWriter out;
  out.put_bytes(kMagic, sizeof(kMagic));
  out.put_u32(kFormatVersion);
  out.put_u32(static_cast<std::uint32_t>(sections_.size()));
  out.put_u64(total);
  std::uint64_t offset = header_size;
  for (const auto& [name, payload] : sections_) {
    out.put_u16(static_cast<std::uint16_t>(name.size()));
    out.put_bytes(name.data(), name.size());
    out.put_u64(offset);
    out.put_u64(payload.size());
    out.put_u32(crc32(payload.bytes().data(), payload.size()));
    offset += payload.size();
  }
  out.put_u32(crc32(out.bytes().data(), out.size()));
  for (const auto& [name, payload] : sections_) {
    (void)name;
    out.put_bytes(payload.bytes().data(), payload.size());
  }
  return out.take();
}

void Writer::write_file(const std::string& path) const {
  const std::string bytes = encode();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(Errc::kIo, "cannot open for writing: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      fail(Errc::kIo, "write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(Errc::kIo, "rename failed: " + tmp + " -> " + path);
  }
}

// --- Reader ---------------------------------------------------------------

Reader Reader::from_bytes(std::string bytes) {
  Reader r;
  r.bytes_ = std::move(bytes);
  const std::string& b = r.bytes_;

  if (b.size() < sizeof(kMagic) ||
      std::memcmp(b.data(), kMagic, sizeof(kMagic)) != 0) {
    fail(Errc::kBadMagic, "not a fedra checkpoint");
  }

  ByteReader header(b.data(), b.size());
  std::uint32_t section_count = 0;
  std::uint64_t recorded_size = 0;
  try {
    char magic[4];
    header.get_bytes(magic, sizeof(magic));
    r.version_ = header.get_u32();
    if (r.version_ != kFormatVersion) {
      fail(Errc::kBadVersion,
           "format version " + std::to_string(r.version_) +
               " (this build reads version " +
               std::to_string(kFormatVersion) + ")");
    }
    section_count = header.get_u32();
    recorded_size = header.get_u64();
    if (recorded_size > b.size()) {
      fail(Errc::kTruncated, "file is " + std::to_string(b.size()) +
                                 " bytes, header records " +
                                 std::to_string(recorded_size));
    }
    if (recorded_size < b.size()) {
      fail(Errc::kMalformed, "trailing bytes after recorded file size");
    }
    if (section_count > kMaxSections) {
      fail(Errc::kMalformed, "implausible section count");
    }

    r.sections_.reserve(section_count);
    for (std::uint32_t i = 0; i < section_count; ++i) {
      SectionInfo info;
      const std::uint16_t name_len = header.get_u16();
      if (name_len == 0 || name_len > kMaxNameLen) {
        fail(Errc::kMalformed, "bad section name length");
      }
      info.name.resize(name_len);
      header.get_bytes(info.name.data(), name_len);
      info.offset = header.get_u64();
      info.size = header.get_u64();
      info.crc = header.get_u32();
      r.sections_.push_back(std::move(info));
    }

    // Header CRC covers everything read so far.
    const std::size_t header_bytes = b.size() - header.remaining();
    const std::uint32_t stored_crc = header.get_u32();
    if (crc32(b.data(), header_bytes) != stored_crc) {
      fail(Errc::kCrcMismatch, "header CRC mismatch");
    }

    const std::uint64_t payload_start = header_bytes + 4;
    for (const auto& s : r.sections_) {
      // Overflow-safe bounds: size is checked against the span AFTER the
      // offset has been validated, so offset + size cannot wrap.
      if (s.offset < payload_start || s.offset > b.size() ||
          s.size > b.size() - s.offset) {
        fail(Errc::kMalformed, "section '" + s.name + "' out of bounds");
      }
      if (crc32(b.data() + s.offset, static_cast<std::size_t>(s.size)) !=
          s.crc) {
        fail(Errc::kCrcMismatch, "section '" + s.name + "' CRC mismatch");
      }
    }
  } catch (const SerializeError&) {
    fail(Errc::kTruncated, "checkpoint header truncated");
  }
  return r;
}

Reader Reader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(Errc::kIo, "cannot open for reading: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) fail(Errc::kIo, "read failed: " + path);
  return from_bytes(std::move(bytes));
}

bool Reader::has(std::string_view name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

ByteReader Reader::open(std::string_view name) const& {
  for (const auto& s : sections_) {
    if (s.name == name) {
      return ByteReader(bytes_.data() + s.offset,
                        static_cast<std::size_t>(s.size));
    }
  }
  fail(Errc::kMissingSection, "no section named '" + std::string(name) + "'");
}

}  // namespace fedra::ckpt
