// fedra::ckpt — versioned, integrity-checked checkpoint container.
//
// A checkpoint file is a flat bag of named binary sections:
//
//   offset 0: magic "FCKP"
//             u32  format version (kFormatVersion)
//             u32  section count
//             u64  total file size in bytes
//             per section, in order:
//               u16 name length | name bytes
//               u64 payload offset (from file start)
//               u64 payload size
//               u32 CRC-32 of the payload
//             u32  CRC-32 of every header byte above
//   payloads, back to back, in table order
//
// All integers are little-endian. Integrity is layered: the recorded file
// size catches truncation, the header CRC catches table corruption, and
// per-section CRCs catch payload corruption — every failure mode maps to
// a typed CkptError (never UB, never a crash). Writes are atomic: the
// file is assembled in memory, written to `path + ".tmp"`, then renamed
// over the destination, so a crash mid-save can never leave a torn
// checkpoint at the target path.
//
// Compatibility policy: the format version is bumped on ANY layout change
// and readers reject versions they were not built for (kBadVersion) —
// checkpoints are exact-state snapshots, so cross-version migration is
// explicitly out of scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tensor/serialize.hpp"

namespace fedra::ckpt {

inline constexpr char kMagic[4] = {'F', 'C', 'K', 'P'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// What went wrong with a checkpoint operation.
enum class Errc {
  kIo = 1,          ///< file cannot be opened / written / renamed
  kBadMagic,        ///< not a fedra checkpoint file
  kBadVersion,      ///< written by an incompatible format version
  kTruncated,       ///< file shorter than its header claims
  kCrcMismatch,     ///< header or section payload fails its CRC
  kMissingSection,  ///< a required section is absent
  kMalformed,       ///< section table or payload framing is inconsistent
  kStateMismatch,   ///< payload shape does not match the restore target
};

/// Stable name for an error code (used in messages and by ckpt_inspect).
const char* errc_name(Errc code);

/// The one exception type of the subsystem. Subtype of runtime_error, so
/// generic catch sites keep working; code() lets callers branch.
class CkptError : public std::runtime_error {
 public:
  CkptError(Errc code, const std::string& what);
  Errc code() const { return code_; }

 private:
  Errc code_;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib convention).
/// Pass a previous result as `seed` to checksum incrementally.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// One row of the section table.
struct SectionInfo {
  std::string name;
  std::uint64_t offset = 0;  ///< payload start, from file offset 0
  std::uint64_t size = 0;    ///< payload bytes
  std::uint32_t crc = 0;     ///< CRC-32 of the payload
};

/// Accumulates named sections in memory, then writes the whole file
/// atomically. Section names must be unique, non-empty, and at most 255
/// bytes.
class Writer {
 public:
  /// Starts a new section; returns the ByteWriter its payload goes into.
  /// The reference stays valid until the next add() call.
  ByteWriter& add(std::string name);

  std::size_t num_sections() const { return sections_.size(); }

  /// Serializes the full container (header + table + payloads).
  std::string encode() const;

  /// encode() to `path + ".tmp"`, then rename over `path`. Throws
  /// CkptError(kIo) on any filesystem failure (the temp file is removed).
  void write_file(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, ByteWriter>> sections_;
};

/// Parses and validates a checkpoint container. ALL validation happens at
/// construction — magic, version, recorded size, header CRC, table bounds,
/// and every section CRC — so a Reader that exists is internally
/// consistent and open() cannot fail for integrity reasons.
class Reader {
 public:
  static Reader from_bytes(std::string bytes);
  static Reader from_file(const std::string& path);

  std::uint32_t version() const { return version_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }

  bool has(std::string_view name) const;

  /// ByteReader over the named payload; throws CkptError(kMissingSection)
  /// when absent. The reader borrows this Reader's buffer, so opening a
  /// temporary Reader would dangle — deleted for rvalues.
  ByteReader open(std::string_view name) const&;
  ByteReader open(std::string_view name) const&& = delete;

 private:
  Reader() = default;

  std::string bytes_;
  std::vector<SectionInfo> sections_;
  std::uint32_t version_ = 0;
};

}  // namespace fedra::ckpt
