// High-level checkpoint entry points: full snapshots of the two stateful
// experiment drivers (the offline DRL trainer and a FedAvg server), built
// from the component codecs in state.hpp on top of the container format
// in format.hpp.
//
// Restore targets are RECONSTRUCTED objects: the caller rebuilds the
// trainer / server from the same experiment config (same topology, seeds
// and traces), then restore_* overwrites every piece of mutable state so
// the resumed run continues bit-exactly — model parameters, optimizer
// moments, RNG stream positions, mid-fill rollout buffer, simulator
// clock, fault crash chain and episode cursor all carry across. A
// topology difference (different device count, network shape, buffer
// capacity, fault seed...) is rejected with CkptError(kStateMismatch).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "ckpt/format.hpp"
#include "core/offline_trainer.hpp"
#include "fl/fedavg.hpp"

namespace fedra::ckpt {

/// Free-form run metadata stored alongside the state (episode stats,
/// config fingerprints...). Doubles only, so the "meta" section stays
/// trivially inspectable.
using Meta = std::map<std::string, double>;

/// Section names used by the trainer snapshot (ckpt_inspect shows these).
inline constexpr const char* kMetaSection = "meta";
inline constexpr const char* kTrainerSection = "trainer";
inline constexpr const char* kRolloutSection = "rollout";
inline constexpr const char* kEnvSection = "env";
inline constexpr const char* kFedAvgSection = "fedavg";

/// Snapshots the full trainer state to `path` (atomically).
/// `next_episode` is the index of the first episode a resumed run should
/// execute — it round-trips through restore_trainer's return value.
void save_trainer(const std::string& path, OfflineTrainer& trainer,
                  std::size_t next_episode, const Meta& meta = {});

/// Restores a save_trainer snapshot into a freshly-built trainer of the
/// same configuration; returns the stored next_episode. Throws CkptError
/// on any integrity or compatibility failure.
std::size_t restore_trainer(const std::string& path, OfflineTrainer& trainer);

/// Snapshots a FedAvg server (global parameters + round counter).
void save_fedavg(const std::string& path, const FedAvgServer& server,
                 const Meta& meta = {});

/// Restores a save_fedavg snapshot into a same-topology server.
void restore_fedavg(const std::string& path, FedAvgServer& server);

/// Reads just the "meta" section of any checkpoint (empty map when the
/// section is absent).
Meta read_meta(const std::string& path);

}  // namespace fedra::ckpt
