#include "ckpt/state.hpp"

#include <string>

namespace fedra::ckpt {

namespace {

[[noreturn]] void throw_mismatch(const std::string& what) {
  throw CkptError(Errc::kStateMismatch, what);
}

[[noreturn]] void throw_malformed(const std::string& what) {
  throw CkptError(Errc::kMalformed, what);
}

}  // namespace

void save_rng(ByteWriter& out, const Rng& rng) {
  const RngState st = rng.state();
  for (std::uint64_t w : st.s) out.put_u64(w);
  out.put_bool(st.gauss_cached);
  out.put_f64(st.gauss_cache);
}

void load_rng(ByteReader in, Rng& rng) {
  decode_guard([&] {
    RngState st;
    for (std::uint64_t& w : st.s) w = in.get_u64();
    st.gauss_cached = in.get_bool();
    st.gauss_cache = in.get_f64();
    in.expect_end();
    rng.set_state(st);
  });
}

void save_normalizer(ByteWriter& out, const RunningNormalizer& n) {
  out.put_doubles(n.mean());
  out.put_doubles(n.m2());
  out.put_u64(n.count());
  out.put_bool(n.frozen());
  out.put_f64(n.clip);
  out.put_f64(n.eps);
}

void load_normalizer(ByteReader in, RunningNormalizer& n) {
  decode_guard([&] {
    std::vector<double> mean = in.get_doubles();
    std::vector<double> m2 = in.get_doubles();
    const std::uint64_t count = in.get_u64();
    const bool frozen = in.get_bool();
    const double clip = in.get_f64();
    const double eps = in.get_f64();
    in.expect_end();
    if (mean.size() != n.dim() || m2.size() != n.dim()) {
      throw_mismatch("normalizer dimension " + std::to_string(mean.size()) +
                     " does not match target " + std::to_string(n.dim()));
    }
    n.restore(std::move(mean), std::move(m2),
              static_cast<std::size_t>(count), frozen);
    n.clip = clip;
    n.eps = eps;
  });
}

void save_params(ByteWriter& out, const std::vector<Matrix*>& params) {
  out.put_u64(params.size());
  for (const Matrix* m : params) out.put_matrix(*m);
}

void save_params(ByteWriter& out, const std::vector<Matrix>& params) {
  out.put_u64(params.size());
  for (const Matrix& m : params) out.put_matrix(m);
}

void load_params(ByteReader in, const std::vector<Matrix*>& params) {
  decode_guard([&] {
    const std::uint64_t count = in.get_u64();
    if (count != params.size()) {
      throw_mismatch("parameter count " + std::to_string(count) +
                     " does not match target " +
                     std::to_string(params.size()));
    }
    for (Matrix* target : params) {
      Matrix m = in.get_matrix();
      if (!m.same_shape(*target)) {
        throw_mismatch("parameter shape (" + std::to_string(m.rows()) + "x" +
                       std::to_string(m.cols()) +
                       ") does not match target (" +
                       std::to_string(target->rows()) + "x" +
                       std::to_string(target->cols()) + ")");
      }
      *target = std::move(m);
    }
    in.expect_end();
  });
}

std::vector<Matrix> load_param_values(ByteReader in) {
  return decode_guard([&] {
    const std::uint64_t count = in.get_u64();
    std::vector<Matrix> out;
    // No reserve on the raw count: a corrupted prefix must not drive a
    // huge allocation — get_matrix throws before `out` can grow past the
    // payload's actual contents.
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(in.get_matrix());
    in.expect_end();
    return out;
  });
}

void save_adam(ByteWriter& out, const Adam& opt) {
  out.put_u64(opt.timestep());
  save_params(out, opt.moment1());
  save_params(out, opt.moment2());
}

void load_adam(ByteReader in, Adam& opt) {
  decode_guard([&] {
    const std::uint64_t t = in.get_u64();
    const std::uint64_t m_count = in.get_u64();
    if (m_count != opt.moment1().size()) {
      throw_mismatch("Adam moment count " + std::to_string(m_count) +
                     " does not match target " +
                     std::to_string(opt.moment1().size()));
    }
    std::vector<Matrix> m;
    m.reserve(opt.moment1().size());
    for (std::size_t i = 0; i < opt.moment1().size(); ++i) {
      Matrix mat = in.get_matrix();
      if (!mat.same_shape(opt.moment1()[i])) {
        throw_mismatch("Adam first-moment shape mismatch at parameter " +
                       std::to_string(i));
      }
      m.push_back(std::move(mat));
    }
    const std::uint64_t v_count = in.get_u64();
    if (v_count != opt.moment2().size()) {
      throw_mismatch("Adam moment count " + std::to_string(v_count) +
                     " does not match target " +
                     std::to_string(opt.moment2().size()));
    }
    std::vector<Matrix> v;
    v.reserve(opt.moment2().size());
    for (std::size_t i = 0; i < opt.moment2().size(); ++i) {
      Matrix mat = in.get_matrix();
      if (!mat.same_shape(opt.moment2()[i])) {
        throw_mismatch("Adam second-moment shape mismatch at parameter " +
                       std::to_string(i));
      }
      v.push_back(std::move(mat));
    }
    in.expect_end();
    opt.restore_state(static_cast<std::size_t>(t), std::move(m),
                      std::move(v));
  });
}

void save_rollout(ByteWriter& out, const RolloutBuffer& buffer) {
  out.put_u64(buffer.capacity());
  out.put_u64(buffer.size());
  for (const Transition& t : buffer.transitions()) {
    out.put_doubles(t.state);
    out.put_doubles(t.next_state);
    out.put_doubles(t.action_u);
    out.put_f64(t.log_prob);
    out.put_f64(t.reward);
    out.put_f64(t.value);
    out.put_f64(t.next_value);
    out.put_bool(t.episode_end);
  }
}

void load_rollout(ByteReader in, RolloutBuffer& buffer) {
  decode_guard([&] {
    const std::uint64_t capacity = in.get_u64();
    if (capacity != buffer.capacity()) {
      throw_mismatch("rollout capacity " + std::to_string(capacity) +
                     " does not match target " +
                     std::to_string(buffer.capacity()));
    }
    const std::uint64_t size = in.get_u64();
    if (size > capacity) {
      throw_malformed("rollout size exceeds its capacity");
    }
    std::vector<Transition> loaded;
    loaded.reserve(static_cast<std::size_t>(size));
    for (std::uint64_t i = 0; i < size; ++i) {
      Transition t;
      t.state = in.get_doubles();
      t.next_state = in.get_doubles();
      t.action_u = in.get_doubles();
      t.log_prob = in.get_f64();
      t.reward = in.get_f64();
      t.value = in.get_f64();
      t.next_value = in.get_f64();
      t.episode_end = in.get_bool();
      // push() contract: non-empty state/action, consistent dims. Check
      // here so a corrupt payload maps to a typed error, not an abort.
      const bool consistent =
          !t.state.empty() && !t.action_u.empty() &&
          t.next_state.size() == t.state.size() &&
          (loaded.empty() ||
           (t.state.size() == loaded.front().state.size() &&
            t.action_u.size() == loaded.front().action_u.size()));
      if (!consistent) throw_malformed("inconsistent rollout transition");
      loaded.push_back(std::move(t));
    }
    in.expect_end();
    buffer.clear();
    for (Transition& t : loaded) buffer.push(std::move(t));
  });
}

void save_fault_model(ByteWriter& out, const fault::FaultModel& model) {
  out.put_u64(model.seed());
  out.put_bools(model.crash_state());
}

void load_fault_model(ByteReader in, fault::FaultModel& model) {
  decode_guard([&] {
    const std::uint64_t seed = in.get_u64();
    std::vector<bool> crashed = in.get_bools();
    in.expect_end();
    // Draws are keyed on the model seed, so restoring a crash chain into a
    // differently-seeded model would splice two unrelated fault sequences.
    if (seed != model.seed()) {
      throw_mismatch("fault-model seed " + std::to_string(seed) +
                     " does not match target " +
                     std::to_string(model.seed()));
    }
    model.set_crash_state(std::move(crashed));
  });
}

void save_sim_clock(ByteWriter& out, const SimulatorBase& sim) {
  out.put_f64(sim.now());
  out.put_u64(sim.iteration());
}

void load_sim_clock(ByteReader in, SimulatorBase& sim) {
  decode_guard([&] {
    const double now = in.get_f64();
    const std::uint64_t iteration = in.get_u64();
    in.expect_end();
    sim.restore_clock(now, static_cast<std::size_t>(iteration));
  });
}

void save_iteration_result(ByteWriter& out, const IterationResult& r) {
  out.put_f64(r.start_time);
  out.put_f64(r.iteration_time);
  out.put_f64(r.total_energy);
  out.put_f64(r.total_compute_energy);
  out.put_f64(r.cost);
  out.put_f64(r.reward);
  out.put_u64(r.num_scheduled);
  out.put_u64(r.num_completed);
  out.put_u64(r.num_crashes);
  out.put_u64(r.num_dropouts);
  out.put_u64(r.num_timeouts);
  out.put_u64(r.num_upload_failures);
  out.put_u64(r.total_retries);
  // Serializes through the layout-agnostic accessor: columnar results are
  // materialized row by row, so the on-disk format is layout-independent
  // (a reloaded result always comes back in row layout).
  const std::size_t slots = r.has_device_outcomes() ? r.num_device_slots() : 0;
  out.put_u64(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    const DeviceOutcome d = r.outcome(i);
    out.put_bool(d.participated);
    out.put_bool(d.completed);
    out.put_u8(static_cast<std::uint8_t>(d.failure));
    out.put_u64(d.retries);
    out.put_f64(d.freq_hz);
    out.put_f64(d.compute_time);
    out.put_f64(d.comm_time);
    out.put_f64(d.total_time);
    out.put_f64(d.idle_time);
    out.put_f64(d.compute_energy);
    out.put_f64(d.comm_energy);
    out.put_f64(d.energy);
    out.put_f64(d.avg_bandwidth);
  }
}

IterationResult load_iteration_result(ByteReader& in) {
  return decode_guard([&] {
    IterationResult r;
    r.start_time = in.get_f64();
    r.iteration_time = in.get_f64();
    r.total_energy = in.get_f64();
    r.total_compute_energy = in.get_f64();
    r.cost = in.get_f64();
    r.reward = in.get_f64();
    r.num_scheduled = static_cast<std::size_t>(in.get_u64());
    r.num_completed = static_cast<std::size_t>(in.get_u64());
    r.num_crashes = static_cast<std::size_t>(in.get_u64());
    r.num_dropouts = static_cast<std::size_t>(in.get_u64());
    r.num_timeouts = static_cast<std::size_t>(in.get_u64());
    r.num_upload_failures = static_cast<std::size_t>(in.get_u64());
    r.total_retries = static_cast<std::size_t>(in.get_u64());
    const std::uint64_t n = in.get_u64();
    // One DeviceOutcome occupies well over 16 bytes, so this cap rejects
    // corrupt counts before the reserve below can allocate.
    if (n > in.remaining() / 16) {
      throw_malformed("device-outcome count exceeds payload");
    }
    r.devices.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      DeviceOutcome d;
      d.participated = in.get_bool();
      d.completed = in.get_bool();
      const std::uint8_t failure = in.get_u8();
      if (failure > static_cast<std::uint8_t>(DeviceFailure::kUpload)) {
        throw_malformed("unknown DeviceFailure value " +
                        std::to_string(failure));
      }
      d.failure = static_cast<DeviceFailure>(failure);
      d.retries = static_cast<std::size_t>(in.get_u64());
      d.freq_hz = in.get_f64();
      d.compute_time = in.get_f64();
      d.comm_time = in.get_f64();
      d.total_time = in.get_f64();
      d.idle_time = in.get_f64();
      d.compute_energy = in.get_f64();
      d.comm_energy = in.get_f64();
      d.energy = in.get_f64();
      d.avg_bandwidth = in.get_f64();
      r.devices.push_back(d);
    }
    if (r.num_completed > r.num_scheduled) {
      throw_malformed("num_completed exceeds num_scheduled");
    }
    return r;
  });
}

void save_env(ByteWriter& out, const FlEnv& env) {
  out.put_u64(env.num_devices());
  out.put_f64(env.bandwidth_ref());
  save_sim_clock(out, env.simulator());
  out.put_u64(env.steps_in_episode());
  const IterationResult* last = env.last_result();
  out.put_bool(last != nullptr);
  if (last != nullptr) save_iteration_result(out, *last);
  save_fault_model(out, env.fault_model());
}

void load_env(ByteReader in, FlEnv& env) {
  decode_guard([&] {
    const std::uint64_t num_devices = in.get_u64();
    if (num_devices != env.num_devices()) {
      throw_mismatch("device count " + std::to_string(num_devices) +
                     " does not match target " +
                     std::to_string(env.num_devices()));
    }
    // bandwidth_ref scales every state entry and is derived
    // deterministically from config + traces — a difference means the env
    // was rebuilt from a different experiment setup.
    const double bandwidth_ref = in.get_f64();
    if (bandwidth_ref != env.bandwidth_ref()) {
      throw_mismatch("bandwidth reference does not match the target env");
    }
    const double now = in.get_f64();
    const std::uint64_t iteration = in.get_u64();
    const std::uint64_t steps_in_episode = in.get_u64();
    const bool has_result = in.get_bool();
    IterationResult last;
    if (has_result) {
      last = load_iteration_result(in);
      if (last.num_device_slots() != env.num_devices()) {
        throw_mismatch("last-result device count does not match the env");
      }
    }
    const std::uint64_t fault_seed = in.get_u64();
    std::vector<bool> crashed = in.get_bools();
    in.expect_end();
    if (fault_seed != env.fault_model().seed()) {
      throw_mismatch("fault-model seed does not match the target env");
    }
    env.simulator().restore_clock(now, static_cast<std::size_t>(iteration));
    env.restore_episode(static_cast<std::size_t>(steps_in_episode),
                        has_result, std::move(last));
    env.fault_model_mut().set_crash_state(std::move(crashed));
  });
}

void save_ppo_agent(Writer& out, PpoAgent& agent, const std::string& prefix) {
  save_params(out.add(prefix + ".actor"), agent.policy().params());
  save_params(out.add(prefix + ".actor_old"),
              agent.behavior_policy().params());
  save_params(out.add(prefix + ".critic"), agent.critic().params());
  save_adam(out.add(prefix + ".actor_opt"), agent.actor_optimizer());
  save_adam(out.add(prefix + ".critic_opt"), agent.critic_optimizer());
}

void load_ppo_agent(const Reader& in, PpoAgent& agent,
                    const std::string& prefix) {
  load_params(in.open(prefix + ".actor"), agent.policy().params());
  load_params(in.open(prefix + ".actor_old"),
              agent.behavior_policy().params());
  load_params(in.open(prefix + ".critic"), agent.critic().params());
  load_adam(in.open(prefix + ".actor_opt"), agent.actor_optimizer());
  load_adam(in.open(prefix + ".critic_opt"), agent.critic_optimizer());
}

}  // namespace fedra::ckpt
