#include "ckpt/checkpoint.hpp"

#include "ckpt/state.hpp"

namespace fedra::ckpt {

namespace {

void write_meta(Writer& out, const Meta& meta) {
  ByteWriter& w = out.add(kMetaSection);
  w.put_u64(meta.size());
  for (const auto& [key, value] : meta) {
    w.put_string(key);
    w.put_f64(value);
  }
}

Meta parse_meta(ByteReader in) {
  return decode_guard([&] {
    Meta meta;
    const std::uint64_t count = in.get_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string key = in.get_string();
      const double value = in.get_f64();
      meta.emplace(std::move(key), value);
    }
    in.expect_end();
    return meta;
  });
}

}  // namespace

void save_trainer(const std::string& path, OfflineTrainer& trainer,
                  std::size_t next_episode, const Meta& meta) {
  Writer out;
  write_meta(out, meta);

  ByteWriter& t = out.add(kTrainerSection);
  t.put_u64(next_episode);
  // Topology fingerprint: restore into a differently-shaped trainer must
  // fail loudly even where the parameter shapes happen to coincide.
  t.put_u64(trainer.env().state_dim());
  t.put_u64(trainer.env().action_dim());
  t.put_bool(trainer.has_update());
  const UpdateStats& u = trainer.last_update();
  t.put_f64(u.policy_loss);
  t.put_f64(u.value_loss);
  t.put_f64(u.entropy);
  t.put_f64(u.approx_kl);
  t.put_f64(u.clip_fraction);
  t.put_f64(u.total_loss);
  save_rng(t, trainer.rng());

  save_ppo_agent(out, trainer.agent());
  save_rollout(out.add(kRolloutSection), trainer.rollout_buffer());
  save_env(out.add(kEnvSection), trainer.env());

  out.write_file(path);
}

std::size_t restore_trainer(const std::string& path,
                            OfflineTrainer& trainer) {
  const Reader in = Reader::from_file(path);

  std::size_t next_episode = 0;
  decode_guard([&] {
    ByteReader t = in.open(kTrainerSection);
    next_episode = static_cast<std::size_t>(t.get_u64());
    const std::uint64_t state_dim = t.get_u64();
    const std::uint64_t action_dim = t.get_u64();
    if (state_dim != trainer.env().state_dim() ||
        action_dim != trainer.env().action_dim()) {
      throw CkptError(Errc::kStateMismatch,
                      "state/action dimensions do not match the target "
                      "trainer");
    }
    const bool has_update = t.get_bool();
    UpdateStats u;
    u.policy_loss = t.get_f64();
    u.value_loss = t.get_f64();
    u.entropy = t.get_f64();
    u.approx_kl = t.get_f64();
    u.clip_fraction = t.get_f64();
    u.total_loss = t.get_f64();
    // The trainer RNG tail of this section is framed by load_rng.
    RngState rng_state;
    for (std::uint64_t& w : rng_state.s) w = t.get_u64();
    rng_state.gauss_cached = t.get_bool();
    rng_state.gauss_cache = t.get_f64();
    t.expect_end();
    trainer.restore_update_stats(u, has_update);
    trainer.rng().set_state(rng_state);
  });

  load_ppo_agent(in, trainer.agent());
  load_rollout(in.open(kRolloutSection), trainer.rollout_buffer());
  load_env(in.open(kEnvSection), trainer.env());
  return next_episode;
}

void save_fedavg(const std::string& path, const FedAvgServer& server,
                 const Meta& meta) {
  Writer out;
  write_meta(out, meta);
  ByteWriter& s = out.add(kFedAvgSection);
  s.put_u64(server.num_clients());
  s.put_u64(server.round());
  save_params(s, server.global_params());
  out.write_file(path);
}

void restore_fedavg(const std::string& path, FedAvgServer& server) {
  const Reader in = Reader::from_file(path);
  decode_guard([&] {
    ByteReader s = in.open(kFedAvgSection);
    const std::uint64_t num_clients = s.get_u64();
    if (num_clients != server.num_clients()) {
      throw CkptError(Errc::kStateMismatch,
                      "client count does not match the target server");
    }
    const std::uint64_t round = s.get_u64();
    const std::uint64_t count = s.get_u64();
    if (count != server.global_params().size()) {
      throw CkptError(Errc::kStateMismatch,
                      "parameter count does not match the target server");
    }
    std::vector<Matrix> params;
    params.reserve(server.global_params().size());
    for (std::size_t p = 0; p < server.global_params().size(); ++p) {
      Matrix m = s.get_matrix();
      if (!m.same_shape(server.global_params()[p])) {
        throw CkptError(Errc::kStateMismatch,
                        "parameter shape does not match the target server");
      }
      params.push_back(std::move(m));
    }
    s.expect_end();
    server.restore(std::move(params), static_cast<std::size_t>(round));
  });
}

Meta read_meta(const std::string& path) {
  const Reader in = Reader::from_file(path);
  if (!in.has(kMetaSection)) return {};
  return parse_meta(in.open(kMetaSection));
}

}  // namespace fedra::ckpt
