// Minimal blocking HTTP/1.1 GET client — the curl-equivalent used by the
// live-plane tests and the scripts/check.sh smoke tool (live_probe), so
// verification needs no external binaries. Loopback-oriented: one
// request, Connection: close, read to EOF.
#pragma once

#include <string>

namespace fedra::live {

struct HttpResponse {
  int status = 0;     ///< HTTP status code; 0 = connect/transport failure
  std::string body;   ///< response body (headers stripped)
  bool ok() const { return status == 200; }
};

/// GETs http://host:port<target> with a bounded timeout per socket op.
HttpResponse http_get(const std::string& host, int port,
                      const std::string& target, int timeout_ms = 2000);

}  // namespace fedra::live
