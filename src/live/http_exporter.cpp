#include "live/http_exporter.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "live/flight_recorder.hpp"
#include "live/status.hpp"
#include "telemetry/telemetry.hpp"

namespace fedra::live {

namespace {

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                status, reason, content_type, body.size());
  out += head;
  out += body;
  return out;
}

/// First request line up to the blank line; 8 KiB cap (a GET of three
/// short paths never comes close).
bool read_request(int fd, std::string& out) {
  char buf[1024];
  out.clear();
  while (out.size() < 8192) {
    const ::ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return !out.empty();
    out.append(buf, static_cast<std::size_t>(n));
    if (out.find("\r\n\r\n") != std::string::npos ||
        out.find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return true;
}

void append_json_number(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6f", key, v);
  out += buf;
}

void append_json_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

LiveServer::LiveServer(LiveConfig config) : config_(config) {
  if (config_.accept_threads < 1) config_.accept_threads = 1;
}

LiveServer::~LiveServer() { stop(); }

bool LiveServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed off-host
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_.store(static_cast<int>(ntohs(bound.sin_port)),
                std::memory_order_release);
  }

  start_us_ = telemetry::now_us();
  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  detail::g_live_servers.fetch_add(1, std::memory_order_relaxed);
  acceptors_.reserve(static_cast<std::size_t>(config_.accept_threads));
  for (int i = 0; i < config_.accept_threads; ++i) {
    acceptors_.emplace_back([this] { accept_loop(); });
  }
  return true;
}

void LiveServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  detail::g_live_servers.fetch_sub(1, std::memory_order_relaxed);
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes every thread blocked in accept() with an error;
    // close() alone does not reliably do that on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (auto& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  acceptors_.clear();
  port_.store(0, std::memory_order_release);
}

void LiveServer::accept_loop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      continue;  // transient (EINTR / aborted connection)
    }
    handle_connection(conn);
    ::close(conn);
  }
}

void LiveServer::handle_connection(int fd) {
  // Bound the read so a stuck client cannot pin an accept thread forever.
  timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string request;
  if (!read_request(fd, request)) return;

  // "GET /path?query HTTP/1.1"
  std::string response;
  const std::size_t sp1 = request.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : request.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = http_response(400, "Bad Request", "text/plain",
                             "malformed request line\n");
  } else if (request.compare(0, sp1, "GET") != 0) {
    response = http_response(405, "Method Not Allowed", "text/plain",
                             "only GET is served\n");
  } else {
    response = respond(request.substr(sp1 + 1, sp2 - sp1 - 1));
  }

  std::size_t off = 0;
  while (off < response.size()) {
    const ::ssize_t n =
        ::send(fd, response.data() + off, response.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

std::string LiveServer::respond(const std::string& target) {
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  // Mirror into the registry so scrape counts appear in flushed JSONL
  // runs (telemetry_report's `== live ==` section) and in /metrics.
  static telemetry::Counter scrape_counter =
      telemetry::Telemetry::metrics().counter("live.http.scrapes");
  scrape_counter.add();

  const std::size_t q = target.find('?');
  const std::string path = target.substr(0, q);
  const std::string query =
      q == std::string::npos ? std::string() : target.substr(q + 1);

  if (path == "/metrics") {
    static telemetry::Gauge dropped_gauge =
        telemetry::Telemetry::metrics().gauge("live.recorder.dropped");
    dropped_gauge.set(static_cast<double>(flight_recorder_stats().dropped));
    std::ostringstream os;
    telemetry::write_prometheus(os,
                                telemetry::Telemetry::metrics().snapshot());
    return http_response(200, "OK", "text/plain; version=0.0.4", os.str());
  }

  if (path == "/healthz") {
    const double age = watchdog_age_s();
    const bool stale = config_.watchdog_stale_s > 0.0 && age >= 0.0 &&
                       age > config_.watchdog_stale_s;
    std::string body = "{";
    body += stale ? "\"status\":\"stale\"," : "\"status\":\"ok\",";
    append_json_number(body, "uptime_s",
                       (telemetry::now_us() - start_us_) / 1e6);
    body += ',';
    append_json_number(body, "watchdog_age_s", age);
    body += ',';
    append_json_number(body, "watchdog_stale_s", config_.watchdog_stale_s);
    body += "}";
    return stale ? http_response(503, "Service Unavailable",
                                 "application/json", body)
                 : http_response(200, "OK", "application/json", body);
  }

  if (path == "/statusz") {
    const FlightRecorderStats rec = flight_recorder_stats();
    const auto [arms_total, arms_done] = sweep_progress();
    std::string body = "{";
    append_json_u64(body, "scrapes",
                    scrapes_.load(std::memory_order_relaxed));
    body += ',';
    append_json_number(body, "uptime_s",
                       (telemetry::now_us() - start_us_) / 1e6);
    body += ',';
    append_json_number(body, "watchdog_age_s", watchdog_age_s());
    body += ",\"telemetry_enabled\":";
    body += telemetry::Telemetry::enabled() ? "true" : "false";
    body += ",\"recorder\":{\"enabled\":";
    body += flight_recorder_enabled() ? "true" : "false";
    body += ',';
    append_json_u64(body, "threads", rec.threads);
    body += ',';
    append_json_u64(body, "records", rec.records);
    body += ',';
    append_json_u64(body, "dropped", rec.dropped);
    body += "},\"sweep\":{";
    append_json_u64(body, "arms_total", arms_total);
    body += ',';
    append_json_u64(body, "arms_done", arms_done);
    body += "},\"sources\":{";
    collect_status_json(body);
    body += '}';
    if (query.find("recorder=1") != std::string::npos) {
      body += ",\"flight_recorder\":";
      append_flight_recorder_json(body);
    }
    body += '}';
    return http_response(200, "OK", "application/json", body);
  }

  return http_response(404, "Not Found", "text/plain",
                       "endpoints: /metrics /healthz /statusz\n");
}

}  // namespace fedra::live
