// Always-on flight recorder: the crash black box.
//
// Every thread that records gets one fixed-size ring of the last
// kFlightRingSlots span/event records. Recording is a handful of relaxed
// atomic stores bracketed by a per-slot sequence word (a seqlock), so the
// steady state allocates nothing, takes no locks, and costs tens of
// nanoseconds; readers (the /statusz?recorder=1 endpoint and the
// async-signal-safe crash dump in flight_recorder.cpp) skip any slot
// whose sequence changes under them. Rings are registered on a global
// lock-free list and deliberately leaked: a SIGSEGV handler must be able
// to walk them even while the owning thread is mid-crash, and records
// from exited threads are exactly what a post-mortem wants to see.
//
// The recorder is independent of telemetry::Telemetry: it defaults ON
// (that is the point of a black box) and is bit-invisible to training —
// it only ever observes timestamps and string-literal pointers.
//
// Header-only hot path (inline variables) so telemetry and the thread
// pool can record without linking fedra_live; the dump/handler machinery
// lives in flight_recorder.cpp inside the fedra_live library.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "live/trace_context.hpp"

namespace fedra::telemetry {
// Defined in telemetry/span.cpp (fedra_telemetry, which fedra_live links).
double now_us();
std::uint32_t current_thread_id();
}  // namespace fedra::telemetry

namespace fedra::live {

enum class FlightKind : std::uint32_t {
  kSpan = 0,   ///< completed TraceSpan (dur_us meaningful)
  kEvent = 1,  ///< instant marker (dur_us = 0, arg free-form)
};

/// One recorded slot. Fields are individual relaxed atomics: the owning
/// thread is the only writer, concurrent dump readers validate via `seq`
/// (odd = write in progress or torn; skip).
struct FlightSlot {
  std::atomic<std::uint64_t> seq{0};  ///< 2*(head+1) when stable, odd mid-write
  std::atomic<const char*> name{nullptr};  ///< string literal
  std::atomic<double> t_us{0.0};
  std::atomic<double> dur_us{0.0};
  std::atomic<std::uint64_t> trace_id{0};
  /// Innermost span id associated with the record: the span's own id for
  /// kSpan records, the enclosing span for kEvent records.
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint32_t> kind{0};
};

inline constexpr std::size_t kFlightRingSlots = 4096;  // power of two

/// Per-thread ring. `head` counts records ever written by this thread;
/// slot index is head & (kFlightRingSlots - 1). Registered once on the
/// global intrusive list, never unregistered, never freed.
struct FlightRing {
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;
  std::atomic<FlightRing*> next{nullptr};
  FlightSlot slots[kFlightRingSlots];
};

namespace detail {
inline std::atomic<FlightRing*> g_flight_rings{nullptr};
inline std::atomic<bool> g_flight_enabled{true};
inline thread_local FlightRing* t_flight_ring = nullptr;

/// One-time per-thread: allocate and publish this thread's ring.
inline FlightRing* make_flight_ring() {
  auto* ring = new FlightRing();  // leaked: see file header
  ring->tid = telemetry::current_thread_id();
  FlightRing* head = g_flight_rings.load(std::memory_order_acquire);
  do {
    ring->next.store(head, std::memory_order_relaxed);
  } while (!g_flight_rings.compare_exchange_weak(
      head, ring, std::memory_order_acq_rel, std::memory_order_acquire));
  t_flight_ring = ring;
  return ring;
}
}  // namespace detail

/// The one branch every record site pays when the recorder is off.
inline bool flight_recorder_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

inline void set_flight_recorder_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

/// Records one slot into the calling thread's ring. Zero-alloc after the
/// thread's first record (which allocates its ring once).
inline void record_flight(const char* name, double t_us, double dur_us,
                          FlightKind kind, std::uint64_t arg = 0) {
  if (!flight_recorder_enabled()) return;
  FlightRing* ring = detail::t_flight_ring;
  if (ring == nullptr) ring = detail::make_flight_ring();
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  FlightSlot& s = ring->slots[h & (kFlightRingSlots - 1)];
  const TraceContext& ctx = current_trace_context();
  // Seqlock write: odd seq marks the slot torn for concurrent dumpers.
  s.seq.store(2 * h + 1, std::memory_order_release);
  s.name.store(name, std::memory_order_relaxed);
  s.t_us.store(t_us, std::memory_order_relaxed);
  s.dur_us.store(dur_us, std::memory_order_relaxed);
  s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  s.span_id.store(ctx.span_id, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint32_t>(kind), std::memory_order_relaxed);
  s.seq.store(2 * (h + 1), std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

/// Instant marker ("this thread was HERE"): one clock read + one slot.
inline void record_event(const char* name, std::uint64_t arg = 0) {
  if (!flight_recorder_enabled()) return;
  record_flight(name, telemetry::now_us(), 0.0, FlightKind::kEvent, arg);
}

/// Aggregate recorder counters (normal-path reads, not signal-safe).
struct FlightRecorderStats {
  std::uint64_t threads = 0;   ///< rings registered
  std::uint64_t records = 0;   ///< slots ever written
  std::uint64_t dropped = 0;   ///< records overwritten by ring wrap
};
FlightRecorderStats flight_recorder_stats();

/// Async-signal-safe dump of every ring's surviving slots to `fd` in a
/// line-oriented text format (write(2) + integer formatting only).
void dump_flight_recorder(int fd);

/// Appends a JSON array of surviving records (normal path; allocates).
/// Used by /statusz?recorder=1 and tests.
void append_flight_recorder_json(std::string& out);

/// Installs SIGSEGV/SIGABRT handlers that dump the recorder to
/// `path` (or stderr when null/empty), restore the default disposition,
/// and re-raise. Idempotent per path; returns false if sigaction fails.
bool install_flight_recorder_crash_handler(const char* path = nullptr);

}  // namespace fedra::live
