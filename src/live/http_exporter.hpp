// Embedded HTTP exporter: the scrape surface of the live plane.
//
// LiveServer is a deliberately tiny blocking HTTP/1.1 server on POSIX
// sockets — one listener socket on 127.0.0.1, a small pool of accept
// threads, Connection: close on every response, no third-party
// libraries. It serves exactly three endpoints:
//
//   GET /metrics   Prometheus text exposition of the telemetry metrics
//                  registry (write_prometheus over one MetricsSnapshot).
//   GET /healthz   JSON liveness: uptime, watchdog staleness. Returns
//                  503 when the watchdog is configured and stale.
//   GET /statusz   JSON snapshot: scrape counters, recorder stats, sweep
//                  arm progress, and every registered status source
//                  (scheduler counters, serve queue/shed/deadline stats,
//                  ledger drop counts). `?recorder=1` appends the flight
//                  recorder's surviving records.
//
// Off by default: nothing in fedra starts a LiveServer unless asked
// (`--live-port` in fedra_cli / bench_serve, or construction in user
// code). Scrapes read snapshots — they never block instrumentation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace fedra::live {

struct LiveConfig {
  /// TCP port to bind on 127.0.0.1. 0 = ephemeral (read back via port()).
  int port = 0;
  /// Accept/serve threads. Scrapes are rare and cheap; 2 covers a scraper
  /// plus a human curl without queueing.
  int accept_threads = 2;
  /// /healthz turns 503 when the last watchdog_kick() is older than this
  /// (seconds). 0 = staleness never fails health. Never-kicked is healthy
  /// (the process may simply not have progress loops instrumented).
  double watchdog_stale_s = 0.0;
};

class LiveServer {
 public:
  explicit LiveServer(LiveConfig config = {});
  ~LiveServer();  ///< stop()s.

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  /// Binds + listens + spawns the accept pool. Returns false (with the
  /// server stopped) if the socket/bind/listen fails. Idempotent.
  bool start();

  /// Closes the listener, wakes the accept threads, joins them. Safe to
  /// call twice; also run by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 to the kernel-chosen ephemeral
  /// port). 0 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Total GET requests answered (any endpoint, any status).
  std::uint64_t scrape_count() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

  const LiveConfig& config() const { return config_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  std::string respond(const std::string& target);

  LiveConfig config_;
  std::atomic<bool> running_{false};
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{0};
  std::atomic<std::uint64_t> scrapes_{0};
  double start_us_ = 0.0;
  std::vector<std::thread> acceptors_;
};

}  // namespace fedra::live
