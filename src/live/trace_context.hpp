// Cross-thread trace-context propagation.
//
// A TraceContext is two 64-bit ids: the trace a computation belongs to
// and the span that is currently open on this thread (the parent of any
// span opened next). The context lives in a thread_local; the scheduler
// captures it at spawn time (ThreadPool::spawn / TaskGroup::run /
// parallel_for chunk setup) and restores it around task execution, so a
// serve request keeps ONE trace id across decide() -> batcher -> batched
// forward -> completion, and a sweep arm's whole task tree hangs off one
// per-arm root. telemetry::TraceSpan reads and pushes this context, which
// is what turns the flat Chrome-trace output into a causal tree.
//
// Everything here is header-only (C++17 inline variables) so the bottom
// telemetry/util layers can use it without a link-time dependency on
// fedra_live. Cost when nothing is tracing: the context is {0, 0} and
// capture/restore is six word copies — no atomics, no branches.
#pragma once

#include <atomic>
#include <cstdint>

namespace fedra::live {

/// The per-thread causal position. trace_id == 0 means "no active trace":
/// spans opened in that state start a fresh trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< innermost open span (parent for children)
};

namespace detail {
inline thread_local TraceContext t_trace_context{};
inline std::atomic<std::uint64_t> g_next_trace_id{1};
}  // namespace detail

/// The calling thread's current context (mutable reference).
inline TraceContext& current_trace_context() {
  return detail::t_trace_context;
}

/// Process-unique nonzero 64-bit id: a counter finalized through the
/// SplitMix64 mixer, so ids are well spread without any RNG state (and
/// without wall-clock reads, which determinism tests forbid).
inline std::uint64_t next_trace_id() {
  std::uint64_t z =
      detail::g_next_trace_id.fetch_add(1, std::memory_order_relaxed) *
      0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z | 1ULL;  // never 0 ("no trace")
}

/// RAII set/restore of the thread's context. Used by the scheduler around
/// task bodies and by the serve batcher around per-request completion
/// work; TraceSpan does its own push/pop inline.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx)
      : saved_(current_trace_context()) {
    current_trace_context() = ctx;
  }
  ~ScopedTraceContext() { current_trace_context() = saved_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace fedra::live
