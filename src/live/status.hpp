// /statusz plumbing: a process-wide registry of named JSON status
// sources, a watchdog heartbeat, and sweep progress counters.
//
// Subsystems that want to show up in /statusz register a callback that
// appends ONE JSON object (the "{...}" only) describing their current
// state: the thread pool registers its scheduler counters, the serve
// engine its queue/shed/deadline stats, the run ledger its drop counts.
// Registration is construction-time work (mutex + vector) — never on a
// hot path — and header-only (inline function-local static) so the
// registrants need no link edge to fedra_live.
//
// The watchdog is one relaxed atomic timestamp: long-running loops call
// watchdog_kick() once per unit of progress (serve batch, sweep arm);
// /healthz reports how stale the last kick is. Kicks are gated on a live
// server actually running, so the cost is one relaxed load when nobody
// is scraping.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fedra::telemetry {
double now_us();  // telemetry/span.cpp
}  // namespace fedra::telemetry

namespace fedra::live {

/// Appends one JSON object ("{...}") describing the source's state.
using StatusFn = std::function<void(std::string&)>;

namespace detail {

struct StatusEntry {
  std::size_t id = 0;
  std::string name;
  StatusFn fn;
};

struct StatusRegistry {
  std::mutex mutex;
  std::vector<StatusEntry> entries;
  std::size_t next_id = 1;
};

/// Immortal (never destroyed): sources may unregister from destructors
/// that run during static teardown.
inline StatusRegistry& status_registry() {
  static StatusRegistry* r = new StatusRegistry();
  return *r;
}

inline std::atomic<int> g_live_servers{0};
inline std::atomic<double> g_watchdog_us{-1.0};
inline std::atomic<std::uint64_t> g_sweep_arms_total{0};
inline std::atomic<std::uint64_t> g_sweep_arms_done{0};

}  // namespace detail

/// Registers a named status source; returns the id for unregistering.
/// Duplicate names are made unique with a ".N" suffix so two pools (or
/// two engines) both stay visible.
inline std::size_t register_status_source(std::string name, StatusFn fn) {
  auto& reg = detail::status_registry();
  std::lock_guard lock(reg.mutex);
  std::string unique = name;
  std::size_t suffix = 2;
  auto taken = [&reg](const std::string& n) {
    for (const auto& e : reg.entries) {
      if (e.name == n) return true;
    }
    return false;
  };
  while (taken(unique)) unique = name + "." + std::to_string(suffix++);
  const std::size_t id = reg.next_id++;
  reg.entries.push_back({id, std::move(unique), std::move(fn)});
  return id;
}

/// Removes a source. Blocks until no collect_status_json is mid-callback
/// (the registry mutex is held across callback invocation), so after this
/// returns the callback will never run again — safe to destroy captures.
inline void unregister_status_source(std::size_t id) {
  auto& reg = detail::status_registry();
  std::lock_guard lock(reg.mutex);
  for (auto it = reg.entries.begin(); it != reg.entries.end(); ++it) {
    if (it->id == id) {
      reg.entries.erase(it);
      return;
    }
  }
}

/// Appends `"name":{...}` members (comma-separated, no surrounding
/// braces) for every registered source, in registration order.
inline void collect_status_json(std::string& out) {
  auto& reg = detail::status_registry();
  std::lock_guard lock(reg.mutex);
  bool first = true;
  for (const auto& e : reg.entries) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += e.name;  // names are code-chosen identifiers; no escaping needed
    out += "\":";
    e.fn(out);
  }
}

// ---------------------------------------------------------------------------
// Watchdog heartbeat.

/// True while at least one LiveServer is running (kick-site gate).
inline bool live_exporter_active() {
  return detail::g_live_servers.load(std::memory_order_relaxed) > 0;
}

/// Progress heartbeat. One relaxed load when no exporter is running; one
/// clock read + relaxed store when one is.
inline void watchdog_kick() {
  if (live_exporter_active()) {
    detail::g_watchdog_us.store(telemetry::now_us(),
                                std::memory_order_relaxed);
  }
}

/// Seconds since the last kick, or a negative value if never kicked.
inline double watchdog_age_s() {
  const double last = detail::g_watchdog_us.load(std::memory_order_relaxed);
  if (last < 0.0) return -1.0;
  return (telemetry::now_us() - last) / 1e6;
}

// ---------------------------------------------------------------------------
// Sweep arm progress (cumulative across SweepEngine::run calls).

inline void sweep_progress_add_total(std::uint64_t arms) {
  detail::g_sweep_arms_total.fetch_add(arms, std::memory_order_relaxed);
}

inline void sweep_progress_arm_done() {
  detail::g_sweep_arms_done.fetch_add(1, std::memory_order_relaxed);
}

/// {total, done} arms since process start.
inline std::pair<std::uint64_t, std::uint64_t> sweep_progress() {
  return {detail::g_sweep_arms_total.load(std::memory_order_relaxed),
          detail::g_sweep_arms_done.load(std::memory_order_relaxed)};
}

}  // namespace fedra::live
