#include "live/http_client.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace fedra::live {

HttpResponse http_get(const std::string& host, int port,
                      const std::string& target, int timeout_ms) {
  HttpResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;

  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }

  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ::ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return out;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ::ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 <code> ..." then headers, blank line, body.
  if (raw.compare(0, 5, "HTTP/") != 0) return out;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return out;
  out.status = std::atoi(raw.c_str() + sp + 1);
  std::size_t body_at = raw.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body_at == std::string::npos) {
    body_at = raw.find("\n\n");
    skip = 2;
  }
  if (body_at != std::string::npos) out.body = raw.substr(body_at + skip);
  return out;
}

}  // namespace fedra::live
