#include "live/flight_recorder.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace fedra::live {

namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe formatting. Only write(2), open(2), and byte pushes
// into a caller-owned buffer — no malloc, no stdio, no locale.

struct SafeWriter {
  int fd = -1;
  char buf[512];
  std::size_t len = 0;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ::ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;  // nothing a signal handler can do about it
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void ch(char c) {
    if (len == sizeof(buf)) flush();
    buf[len++] = c;
  }
  void str(const char* s) {
    if (s == nullptr) s = "(null)";
    for (; *s != '\0'; ++s) ch(*s);
  }
  void u64(std::uint64_t v) {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) ch(tmp[--n]);
  }
  void hex64(std::uint64_t v) {
    str("0x");
    char tmp[16];
    std::size_t n = 0;
    do {
      const std::uint64_t d = v & 0xF;
      tmp[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + (d - 10));
      v >>= 4;
    } while (v != 0);
    while (n > 0) ch(tmp[--n]);
  }
};

/// Stable read of one slot via its seqlock. Returns false if the slot was
/// never written or a writer raced us (dump skips it).
struct SlotCopy {
  const char* name;
  double t_us;
  double dur_us;
  std::uint64_t trace_id;
  std::uint64_t span_id;
  std::uint64_t arg;
  std::uint32_t kind;
};

bool read_slot(const FlightSlot& s, std::uint64_t expected_head,
               SlotCopy& out) {
  const std::uint64_t q1 = s.seq.load(std::memory_order_acquire);
  if (q1 != 2 * (expected_head + 1)) return false;  // torn or overwritten
  out.name = s.name.load(std::memory_order_relaxed);
  out.t_us = s.t_us.load(std::memory_order_relaxed);
  out.dur_us = s.dur_us.load(std::memory_order_relaxed);
  out.trace_id = s.trace_id.load(std::memory_order_relaxed);
  out.span_id = s.span_id.load(std::memory_order_relaxed);
  out.arg = s.arg.load(std::memory_order_relaxed);
  out.kind = s.kind.load(std::memory_order_relaxed);
  const std::uint64_t q2 = s.seq.load(std::memory_order_acquire);
  return q1 == q2;
}

/// Oldest record index still (possibly) present in a ring.
std::uint64_t ring_first(std::uint64_t head) {
  return head > kFlightRingSlots ? head - kFlightRingSlots : 0;
}

// Crash-handler state: plain statics written once by
// install_flight_recorder_crash_handler before any signal can use them.
char g_dump_path[512] = {0};
struct sigaction g_old_segv;
struct sigaction g_old_abrt;

extern "C" void flight_crash_handler(int signo) {
  int fd = 2;  // stderr fallback
  int opened = -1;
  if (g_dump_path[0] != '\0') {
    opened = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (opened >= 0) fd = opened;
  }
  dump_flight_recorder(fd);
  if (opened >= 0) ::close(opened);
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (exit code, core dump, waitpid status).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorderStats flight_recorder_stats() {
  FlightRecorderStats out;
  for (FlightRing* r = detail::g_flight_rings.load(std::memory_order_acquire);
       r != nullptr; r = r->next.load(std::memory_order_acquire)) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    ++out.threads;
    out.records += head;
    out.dropped += ring_first(head);  // records the wrap overwrote
  }
  return out;
}

void dump_flight_recorder(int fd) {
  SafeWriter w;
  w.fd = fd;
  const FlightRecorderStats stats = flight_recorder_stats();
  w.str("== fedra flight recorder ==\nthreads ");
  w.u64(stats.threads);
  w.str(" records ");
  w.u64(stats.records);
  w.str(" dropped ");
  w.u64(stats.dropped);
  w.ch('\n');
  for (FlightRing* r = detail::g_flight_rings.load(std::memory_order_acquire);
       r != nullptr; r = r->next.load(std::memory_order_acquire)) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    for (std::uint64_t i = ring_first(head); i < head; ++i) {
      SlotCopy c;
      if (!read_slot(r->slots[i & (kFlightRingSlots - 1)], i, c)) continue;
      w.str("tid ");
      w.u64(r->tid);
      w.str(" seq ");
      w.u64(i);
      w.str(c.kind == static_cast<std::uint32_t>(FlightKind::kSpan)
                ? " span "
                : " event ");
      w.str(c.name);
      w.str(" t_us ");
      w.u64(c.t_us < 0.0 ? 0 : static_cast<std::uint64_t>(c.t_us));
      w.str(" dur_us ");
      w.u64(c.dur_us < 0.0 ? 0 : static_cast<std::uint64_t>(c.dur_us));
      w.str(" trace ");
      w.hex64(c.trace_id);
      w.str(" span ");
      w.hex64(c.span_id);
      w.str(" arg ");
      w.u64(c.arg);
      w.ch('\n');
    }
  }
  w.str("== end flight recorder ==\n");
  w.flush();
}

void append_flight_recorder_json(std::string& out) {
  char buf[256];
  out += '[';
  bool first = true;
  for (FlightRing* r = detail::g_flight_rings.load(std::memory_order_acquire);
       r != nullptr; r = r->next.load(std::memory_order_acquire)) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    for (std::uint64_t i = ring_first(head); i < head; ++i) {
      SlotCopy c;
      if (!read_slot(r->slots[i & (kFlightRingSlots - 1)], i, c)) continue;
      if (!first) out += ',';
      first = false;
      // Names are instrumentation string literals (no quotes/control
      // bytes), so they embed without escaping.
      std::snprintf(
          buf, sizeof(buf),
          "{\"tid\":%u,\"seq\":%llu,\"kind\":\"%s\",\"name\":\"%s\","
          "\"t_us\":%.3f,\"dur_us\":%.3f,\"trace_id\":\"0x%llx\","
          "\"span_id\":\"0x%llx\",\"arg\":%llu}",
          r->tid, static_cast<unsigned long long>(i),
          c.kind == static_cast<std::uint32_t>(FlightKind::kSpan) ? "span"
                                                                  : "event",
          c.name != nullptr ? c.name : "",
          c.t_us, c.dur_us, static_cast<unsigned long long>(c.trace_id),
          static_cast<unsigned long long>(c.span_id),
          static_cast<unsigned long long>(c.arg));
      out += buf;
    }
  }
  out += ']';
}

bool install_flight_recorder_crash_handler(const char* path) {
  if (path != nullptr && path[0] != '\0') {
    std::strncpy(g_dump_path, path, sizeof(g_dump_path) - 1);
    g_dump_path[sizeof(g_dump_path) - 1] = '\0';
  } else {
    g_dump_path[0] = '\0';
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &flight_crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  if (::sigaction(SIGSEGV, &sa, &g_old_segv) != 0) return false;
  if (::sigaction(SIGABRT, &sa, &g_old_abrt) != 0) return false;
  return true;
}

}  // namespace fedra::live
