// The paper's objective (Eq. 9) and reward (Eq. 13) as plain functions over
// per-iteration outcomes, plus the container those outcomes live in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/device.hpp"

namespace fedra {

/// Knobs of the optimization problem (Section III-B).
struct CostParams {
  /// lambda — weight of total energy against iteration time in Eq. (9).
  double lambda = 0.1;
  /// tau — local training passes per iteration.
  double tau = 1.0;
  /// xi — model size uploaded each iteration, in BYTES (traces are
  /// bytes/second).
  double model_bytes = 10e6;
};

/// How a scheduled device failed to deliver its update (kNone = it did).
enum class DeviceFailure : std::uint8_t {
  kNone = 0,
  kCrash,    ///< down for the whole round (crash-and-rejoin chain)
  kDropout,  ///< vanished mid-round
  kTimeout,  ///< still running at the round deadline
  kUpload,   ///< every upload attempt failed (retries exhausted)
};

/// Outcome of one device in one federated iteration.
struct DeviceOutcome {
  /// False when the device was excluded from the round (client
  /// selection); all time/energy fields are zero in that case.
  bool participated = true;
  /// True when the device's update reached the server. Scheduled devices
  /// that crash, drop out, time out, or exhaust upload retries have
  /// completed == false with `failure` saying why — but are still charged
  /// the time and energy they actually spent.
  bool completed = true;
  DeviceFailure failure = DeviceFailure::kNone;
  std::size_t retries = 0;    ///< upload re-attempts after a failure
  double freq_hz = 0.0;       ///< delta_i^k chosen by the controller
  double compute_time = 0.0;  ///< t_cmp (Eq. 1)
  double comm_time = 0.0;     ///< t_com realized from the trace (Eq. 2/3)
  double total_time = 0.0;    ///< T_i = t_cmp + t_com (Eq. 4)
  double idle_time = 0.0;     ///< T^k - T_i (waiting for the straggler)
  double compute_energy = 0.0;
  double comm_energy = 0.0;
  double energy = 0.0;        ///< E_i (Eq. 6)
  double avg_bandwidth = 0.0; ///< B_i^k — realized mean upload speed (Eq. 3)
};

/// Outcome of one full synchronized iteration.
struct IterationResult {
  double start_time = 0.0;      ///< t^k
  double iteration_time = 0.0;  ///< T^k = max_i T_i (Eq. 5)
  double total_energy = 0.0;    ///< sum_i E_i
  double total_compute_energy = 0.0;
  double cost = 0.0;            ///< T^k + lambda * sum_i E_i (Eq. 9 summand)
  double reward = 0.0;          ///< -cost (Eq. 13)
  std::vector<DeviceOutcome> devices;

  // Fault/straggler accounting (all zero on a clean full round).
  std::size_t num_scheduled = 0;  ///< participating devices
  std::size_t num_completed = 0;  ///< updates that reached the server
  std::size_t num_crashes = 0;
  std::size_t num_dropouts = 0;
  std::size_t num_timeouts = 0;
  std::size_t num_upload_failures = 0;  ///< retries exhausted
  std::size_t total_retries = 0;

  /// Scheduled devices whose update was lost.
  std::size_t num_failed() const { return num_scheduled - num_completed; }
  /// True when at least one scheduled update went missing (the rounds
  /// FedAvg must partially aggregate).
  bool partial() const { return num_completed < num_scheduled; }
  /// Indices of devices whose update arrived (FedAvg's delivered roster).
  std::vector<std::size_t> completed_indices() const;
};

/// Eq. (9) single-iteration cost.
double iteration_cost(double iteration_time, double total_energy,
                      const CostParams& params);

/// Eq. (13): r_k = -T^k - lambda * sum_i E_i^k.
double iteration_reward(double iteration_time, double total_energy,
                        const CostParams& params);

/// Sum of per-iteration costs over a run (the full objective, Eq. 9).
double total_cost(const std::vector<IterationResult>& results);

}  // namespace fedra
