// The paper's objective (Eq. 9) and reward (Eq. 13) as plain functions over
// per-iteration outcomes, plus the container those outcomes live in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/device.hpp"

namespace fedra {

/// Knobs of the optimization problem (Section III-B).
struct CostParams {
  /// lambda — weight of total energy against iteration time in Eq. (9).
  double lambda = 0.1;
  /// tau — local training passes per iteration.
  double tau = 1.0;
  /// xi — model size uploaded each iteration, in BYTES (traces are
  /// bytes/second).
  double model_bytes = 10e6;
};

/// How a scheduled device failed to deliver its update (kNone = it did).
enum class DeviceFailure : std::uint8_t {
  kNone = 0,
  kCrash,    ///< down for the whole round (crash-and-rejoin chain)
  kDropout,  ///< vanished mid-round
  kTimeout,  ///< still running at the round deadline
  kUpload,   ///< every upload attempt failed (retries exhausted)
};

/// How a round's per-device outcomes are materialized in IterationResult.
/// Row structs are convenient at testbed scale; a 1M-device round must not
/// allocate a million 13-field structs per step, so the engine can emit
/// columns (SoA) or aggregates only.
enum class OutcomeLayout : std::uint8_t {
  /// Rows for fleets up to the columnar threshold, columns beyond.
  kAuto = 0,
  kRows,     ///< IterationResult::devices (one DeviceOutcome per device)
  kColumns,  ///< IterationResult::columns (one vector per field)
  kSummary,  ///< aggregates only; no per-device outcome storage
};

/// Outcome of one device in one federated iteration.
struct DeviceOutcome {
  /// False when the device was excluded from the round (client
  /// selection); all time/energy fields are zero in that case.
  bool participated = true;
  /// True when the device's update reached the server. Scheduled devices
  /// that crash, drop out, time out, or exhaust upload retries have
  /// completed == false with `failure` saying why — but are still charged
  /// the time and energy they actually spent.
  bool completed = true;
  DeviceFailure failure = DeviceFailure::kNone;
  std::size_t retries = 0;    ///< upload re-attempts after a failure
  double freq_hz = 0.0;       ///< delta_i^k chosen by the controller
  double compute_time = 0.0;  ///< t_cmp (Eq. 1)
  double comm_time = 0.0;     ///< t_com realized from the trace (Eq. 2/3)
  double total_time = 0.0;    ///< T_i = t_cmp + t_com (Eq. 4)
  double idle_time = 0.0;     ///< T^k - T_i (waiting for the straggler)
  double compute_energy = 0.0;
  double comm_energy = 0.0;
  double energy = 0.0;        ///< E_i (Eq. 6)
  double avg_bandwidth = 0.0; ///< B_i^k — realized mean upload speed (Eq. 3)
};

/// Columnar (structure-of-arrays) per-device outcomes: the same fields as
/// DeviceOutcome, one contiguous vector per field. At fleet scale this is
/// what the round engine writes — 13 column stores instead of a million
/// struct constructions.
struct DeviceOutcomeColumns {
  std::vector<std::uint8_t> participated;
  std::vector<std::uint8_t> completed;
  std::vector<std::uint8_t> failure;  ///< DeviceFailure values
  std::vector<std::uint32_t> retries;
  std::vector<double> freq_hz;
  std::vector<double> compute_time;
  std::vector<double> comm_time;
  std::vector<double> total_time;
  std::vector<double> idle_time;
  std::vector<double> compute_energy;
  std::vector<double> comm_energy;
  std::vector<double> energy;
  std::vector<double> avg_bandwidth;

  std::size_t size() const { return freq_hz.size(); }
  bool empty() const { return freq_hz.empty(); }
  void resize(std::size_t n);
  void clear();

  /// Materializes device i as a row.
  DeviceOutcome row(std::size_t i) const;
  void set_row(std::size_t i, const DeviceOutcome& out);
};

/// Outcome of one full synchronized iteration.
struct IterationResult {
  double start_time = 0.0;      ///< t^k
  double iteration_time = 0.0;  ///< T^k = max_i T_i (Eq. 5)
  double total_energy = 0.0;    ///< sum_i E_i
  double total_compute_energy = 0.0;
  double cost = 0.0;            ///< T^k + lambda * sum_i E_i (Eq. 9 summand)
  double reward = 0.0;          ///< -cost (Eq. 13)
  /// Which outcome container below is populated (never kAuto here).
  OutcomeLayout layout = OutcomeLayout::kRows;
  std::vector<DeviceOutcome> devices;  ///< populated when layout == kRows
  DeviceOutcomeColumns columns;        ///< populated when layout == kColumns

  // Fault/straggler accounting (all zero on a clean full round).
  std::size_t num_scheduled = 0;  ///< participating devices
  std::size_t num_completed = 0;  ///< updates that reached the server
  std::size_t num_crashes = 0;
  std::size_t num_dropouts = 0;
  std::size_t num_timeouts = 0;
  std::size_t num_upload_failures = 0;  ///< retries exhausted
  std::size_t total_retries = 0;

  /// Per-device outcome slots stored (0 in summary layout).
  std::size_t num_device_slots() const {
    return layout == OutcomeLayout::kColumns ? columns.size()
                                             : devices.size();
  }
  /// True unless the round ran in summary layout.
  bool has_device_outcomes() const {
    return layout != OutcomeLayout::kSummary;
  }
  /// Device i's outcome regardless of layout (rows or columns).
  DeviceOutcome outcome(std::size_t i) const;

  /// Scheduled devices whose update was lost.
  std::size_t num_failed() const { return num_scheduled - num_completed; }
  /// True when at least one scheduled update went missing (the rounds
  /// FedAvg must partially aggregate).
  bool partial() const { return num_completed < num_scheduled; }
  /// Indices of devices whose update arrived (FedAvg's delivered roster).
  /// Requires per-device outcomes (rows or columns layout).
  std::vector<std::size_t> completed_indices() const;
};

/// Eq. (9) single-iteration cost.
double iteration_cost(double iteration_time, double total_energy,
                      const CostParams& params);

/// Eq. (13): r_k = -T^k - lambda * sum_i E_i^k.
double iteration_reward(double iteration_time, double total_energy,
                        const CostParams& params);

/// Sum of per-iteration costs over a run (the full objective, Eq. 9).
double total_cost(const std::vector<IterationResult>& results);

}  // namespace fedra
