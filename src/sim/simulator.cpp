#include "sim/simulator.hpp"

#include "obs/ledger.hpp"
#include "obs/record_builders.hpp"
#include "telemetry/telemetry.hpp"

namespace fedra {

namespace {
namespace tel = fedra::telemetry;

// Simulated quantities (seconds / joules), not wall-clock: geometric
// buckets from 1ms-equivalent up so both the 0.1s testbed iterations and
// multi-minute straggler rounds resolve.
std::vector<double> sim_bounds() {
  return tel::exponential_bounds(1e-3, 2.0, 36);
}

struct SimMetrics {
  tel::Counter iterations =
      tel::Telemetry::metrics().counter("sim.iterations");
  tel::Histogram iter_time_s =
      tel::Telemetry::metrics().histogram("sim.iter_time_s", sim_bounds());
  tel::Histogram compute_time_s = tel::Telemetry::metrics().histogram(
      "sim.device_compute_time_s", sim_bounds());
  tel::Histogram comm_time_s = tel::Telemetry::metrics().histogram(
      "sim.device_comm_time_s", sim_bounds());
  tel::Histogram iter_energy_j = tel::Telemetry::metrics().histogram(
      "sim.iter_energy_j", sim_bounds());
  tel::Histogram device_energy_j = tel::Telemetry::metrics().histogram(
      "sim.device_energy_j", sim_bounds());
  tel::Histogram step_us =
      tel::Telemetry::metrics().histogram("sim.step_us");
  // Fault surface: how often the barrier loses devices, and to what.
  tel::Counter dropped_devices =
      tel::Telemetry::metrics().counter("sim.fault.dropped_devices");
  tel::Counter timeouts =
      tel::Telemetry::metrics().counter("sim.fault.timeouts");
  tel::Counter crashes =
      tel::Telemetry::metrics().counter("sim.fault.crashes");
  tel::Counter upload_failures =
      tel::Telemetry::metrics().counter("sim.fault.upload_failures");
  tel::Counter retries =
      tel::Telemetry::metrics().counter("sim.fault.retries");
  tel::Counter partial_rounds =
      tel::Telemetry::metrics().counter("sim.fault.partial_rounds");
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}

void record_iteration(const IterationResult& result) {
  auto& m = sim_metrics();
  m.iterations.add();
  m.iter_time_s.record(result.iteration_time);
  m.iter_energy_j.record(result.total_energy);
  for (std::size_t i = 0; i < result.num_device_slots(); ++i) {
    const DeviceOutcome out = result.outcome(i);
    if (!out.participated) continue;
    m.compute_time_s.record(out.compute_time);
    m.comm_time_s.record(out.comm_time);
    m.device_energy_j.record(out.energy);
  }
  if (result.num_dropouts > 0) m.dropped_devices.add(result.num_dropouts);
  if (result.num_timeouts > 0) m.timeouts.add(result.num_timeouts);
  if (result.num_crashes > 0) m.crashes.add(result.num_crashes);
  if (result.num_upload_failures > 0) {
    m.upload_failures.add(result.num_upload_failures);
  }
  if (result.total_retries > 0) m.retries.add(result.total_retries);
  if (result.partial()) m.partial_rounds.add();
}
}  // namespace

FlSimulator::FlSimulator(std::vector<DeviceProfile> devices,
                         std::vector<BandwidthTrace> traces, CostParams params,
                         double start_time)
    : SimulatorBase(std::move(devices), std::move(traces), params,
                    start_time) {}

FlSimulator::FlSimulator(FleetState fleet, TraceTable traces,
                         CostParams params, double start_time)
    : SimulatorBase(std::move(fleet), std::move(traces), params, start_time) {}

IterationResult FlSimulator::step(const std::vector<double>& freqs_hz,
                                  const StepOptions& options) {
  if (options.dry_run_at.has_value()) return preview(freqs_hz, options);
  tel::ScopedTimer timer(tel::Telemetry::enabled() ? sim_metrics().step_us
                                                   : tel::Histogram{});
  fault::RoundFaults faults;
  const bool has_faults = resolve_faults(options, /*advance=*/true, &faults);
  IterationResult result = compute_round(
      freqs_hz, options, has_faults ? &faults : nullptr, now_,
      /*barrier_idle=*/true);
  // Constraint (11): t^{k+1} = t^k + T^k.
  now_ += result.iteration_time;
  ++iteration_;
  FEDRA_TELEMETRY_IF {
    record_iteration(result);
    if (obs::RunLedger::enabled()) {
      obs::RunLedger::record_round(
          obs::make_round_record(iteration_ - 1, result, params(), "sim",
                                 obs::RunLedger::config().max_device_rows));
    }
  }
  return result;
}

IterationResult FlSimulator::preview(const std::vector<double>& freqs_hz,
                                     StepOptions options) const {
  const double start_time = options.dry_run_at.value_or(now_);
  FEDRA_EXPECTS(start_time >= 0.0);
  fault::RoundFaults faults;
  const bool has_faults = resolve_faults(options, /*advance=*/false, &faults);
  return compute_round(freqs_hz, options, has_faults ? &faults : nullptr,
                       start_time, /*barrier_idle=*/true);
}

}  // namespace fedra
