#include "sim/simulator.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace fedra {

namespace {
namespace tel = fedra::telemetry;

// Simulated quantities (seconds / joules), not wall-clock: geometric
// buckets from 1ms-equivalent up so both the 0.1s testbed iterations and
// multi-minute straggler rounds resolve.
std::vector<double> sim_bounds() {
  return tel::exponential_bounds(1e-3, 2.0, 36);
}

struct SimMetrics {
  tel::Counter iterations =
      tel::Telemetry::metrics().counter("sim.iterations");
  tel::Histogram iter_time_s =
      tel::Telemetry::metrics().histogram("sim.iter_time_s", sim_bounds());
  tel::Histogram compute_time_s = tel::Telemetry::metrics().histogram(
      "sim.device_compute_time_s", sim_bounds());
  tel::Histogram comm_time_s = tel::Telemetry::metrics().histogram(
      "sim.device_comm_time_s", sim_bounds());
  tel::Histogram iter_energy_j = tel::Telemetry::metrics().histogram(
      "sim.iter_energy_j", sim_bounds());
  tel::Histogram device_energy_j = tel::Telemetry::metrics().histogram(
      "sim.device_energy_j", sim_bounds());
  tel::Histogram step_us =
      tel::Telemetry::metrics().histogram("sim.step_us");
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}

void record_iteration(const IterationResult& result) {
  auto& m = sim_metrics();
  m.iterations.add();
  m.iter_time_s.record(result.iteration_time);
  m.iter_energy_j.record(result.total_energy);
  for (const auto& out : result.devices) {
    if (!out.participated) continue;
    m.compute_time_s.record(out.compute_time);
    m.comm_time_s.record(out.comm_time);
    m.device_energy_j.record(out.energy);
  }
}
}  // namespace

FlSimulator::FlSimulator(std::vector<DeviceProfile> devices,
                         std::vector<BandwidthTrace> traces, CostParams params,
                         double start_time)
    : devices_(std::move(devices)),
      traces_(std::move(traces)),
      params_(params),
      now_(start_time) {
  FEDRA_EXPECTS(!devices_.empty());
  FEDRA_EXPECTS(devices_.size() == traces_.size());
  FEDRA_EXPECTS(params_.tau > 0.0);
  FEDRA_EXPECTS(params_.model_bytes > 0.0);
  FEDRA_EXPECTS(start_time >= 0.0);
}

void FlSimulator::reset(double start_time) {
  FEDRA_EXPECTS(start_time >= 0.0);
  now_ = start_time;
  iteration_ = 0;
}

IterationResult FlSimulator::run_iteration(
    const std::vector<double>& freqs_hz,
    const std::vector<bool>* participating, double start_time) const {
  FEDRA_EXPECTS(freqs_hz.size() == devices_.size());
  if (participating != nullptr) {
    FEDRA_EXPECTS(participating->size() == devices_.size());
    FEDRA_EXPECTS(std::find(participating->begin(), participating->end(),
                            true) != participating->end());
  }
  IterationResult result;
  result.start_time = start_time;
  result.devices.resize(devices_.size());

  double makespan = 0.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const DeviceProfile& dev = devices_[i];
    DeviceOutcome& out = result.devices[i];
    if (participating != nullptr && !(*participating)[i]) {
      out.participated = false;
      continue;  // all fields stay zero; no barrier contribution
    }

    const double floor_hz = kMinFreqFraction * dev.max_freq_hz;
    out.freq_hz = std::clamp(freqs_hz[i], floor_hz, dev.max_freq_hz);

    out.compute_time = dev.compute_time(out.freq_hz, params_.tau);
    const double upload_start = start_time + out.compute_time;
    const double upload_end =
        traces_[i].upload_finish_time(upload_start, params_.model_bytes);
    out.comm_time = upload_end - upload_start;
    out.total_time = out.compute_time + out.comm_time;
    out.avg_bandwidth = out.comm_time > 0.0
                            ? params_.model_bytes / out.comm_time
                            : traces_[i].bandwidth_at(upload_start);

    out.compute_energy = dev.compute_energy(out.freq_hz, params_.tau);
    out.comm_energy = dev.comm_energy(out.comm_time);
    out.energy = out.compute_energy + out.comm_energy;

    result.total_energy += out.energy;
    result.total_compute_energy += out.compute_energy;
    makespan = std::max(makespan, out.total_time);
  }

  result.iteration_time = makespan;
  for (auto& out : result.devices) {
    out.idle_time = out.participated ? makespan - out.total_time : 0.0;
  }
  result.cost = iteration_cost(makespan, result.total_energy, params_);
  result.reward = iteration_reward(makespan, result.total_energy, params_);
  return result;
}

IterationResult FlSimulator::step(const std::vector<double>& freqs_hz) {
  tel::ScopedTimer timer(tel::Telemetry::enabled() ? sim_metrics().step_us
                                                   : tel::Histogram{});
  IterationResult result = run_iteration(freqs_hz, nullptr, now_);
  // Constraint (11): t^{k+1} = t^k + T^k.
  now_ += result.iteration_time;
  ++iteration_;
  FEDRA_TELEMETRY_IF record_iteration(result);
  return result;
}

IterationResult FlSimulator::step(const std::vector<double>& freqs_hz,
                                  const std::vector<bool>& participating) {
  tel::ScopedTimer timer(tel::Telemetry::enabled() ? sim_metrics().step_us
                                                   : tel::Histogram{});
  IterationResult result = run_iteration(freqs_hz, &participating, now_);
  now_ += result.iteration_time;
  ++iteration_;
  FEDRA_TELEMETRY_IF record_iteration(result);
  return result;
}

IterationResult FlSimulator::preview(const std::vector<double>& freqs_hz,
                                     double start_time) const {
  FEDRA_EXPECTS(start_time >= 0.0);
  return run_iteration(freqs_hz, nullptr, start_time);
}

}  // namespace fedra
