#include "sim/async_simulator.hpp"

#include <algorithm>
#include <queue>

#include "obs/ledger.hpp"
#include "obs/record_builders.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contracts.hpp"

namespace fedra {

double AsyncRunResult::mean_staleness() const {
  if (events.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& e : events) acc += static_cast<double>(e.staleness);
  return acc / static_cast<double>(events.size());
}

AsyncFlSimulator::AsyncFlSimulator(std::vector<DeviceProfile> devices,
                                   std::vector<BandwidthTrace> traces,
                                   CostParams params, double start_time)
    : SimulatorBase(std::move(devices), std::move(traces), params,
                    start_time) {}

AsyncFlSimulator::AsyncFlSimulator(FleetState fleet, TraceTable traces,
                                   CostParams params, double start_time)
    : SimulatorBase(std::move(fleet), std::move(traces), params, start_time) {}

IterationResult AsyncFlSimulator::step(const std::vector<double>& freqs_hz,
                                       const StepOptions& options) {
  if (options.dry_run_at.has_value()) return preview(freqs_hz, options);
  fault::RoundFaults faults;
  const bool has_faults = resolve_faults(options, /*advance=*/true, &faults);
  IterationResult result = compute_round(
      freqs_hz, options, has_faults ? &faults : nullptr, now_,
      /*barrier_idle=*/false);
  now_ += result.iteration_time;
  ++iteration_;
  FEDRA_TELEMETRY_IF {
    if (obs::RunLedger::enabled()) {
      obs::RunLedger::record_round(
          obs::make_round_record(iteration_ - 1, result, params(), "async",
                                 obs::RunLedger::config().max_device_rows));
    }
  }
  return result;
}

IterationResult AsyncFlSimulator::preview(const std::vector<double>& freqs_hz,
                                          StepOptions options) const {
  const double start_time = options.dry_run_at.value_or(now());
  FEDRA_EXPECTS(start_time >= 0.0);
  fault::RoundFaults faults;
  const bool has_faults = resolve_faults(options, /*advance=*/false, &faults);
  return compute_round(freqs_hz, options, has_faults ? &faults : nullptr,
                       start_time, /*barrier_idle=*/false);
}

AsyncRunResult AsyncFlSimulator::run(const std::vector<double>& freqs_hz,
                                     double horizon) const {
  FEDRA_EXPECTS(freqs_hz.size() == num_devices());
  FEDRA_EXPECTS(horizon > 0.0);
  FEDRA_TRACE_SPAN("async_run");

  struct Pending {
    double finish;
    std::size_t device;
    std::size_t based_on_version;
    double compute_time;
    double comm_time;
    double energy;
    bool operator>(const Pending& other) const {
      return finish > other.finish;
    }
  };

  // Start every device's first cycle at t = 0 against version 0; each
  // completion immediately schedules the device's next cycle.
  const auto schedule = [&](std::size_t i, double start,
                            std::size_t version) -> Pending {
    const DeviceProfile dev = fleet().device(i);
    const double floor_hz = kMinFreqFraction * dev.max_freq_hz;
    const double f = std::clamp(freqs_hz[i], floor_hz, dev.max_freq_hz);
    const double cmp = dev.compute_time(f, params().tau);
    const double upload_end =
        trace(i).upload_finish_time(start + cmp, params().model_bytes);
    Pending p;
    p.finish = upload_end;
    p.device = i;
    p.based_on_version = version;
    p.compute_time = cmp;
    p.comm_time = upload_end - (start + cmp);
    p.energy = dev.compute_energy(f, params().tau) +
               dev.comm_energy(p.comm_time);
    return p;
  };

  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  for (std::size_t i = 0; i < num_devices(); ++i) {
    queue.push(schedule(i, 0.0, 0));
  }

  AsyncRunResult result;
  result.horizon = horizon;
  result.updates_per_device.assign(num_devices(), 0);
  std::size_t version = 0;
  while (!queue.empty()) {
    Pending p = queue.top();
    queue.pop();
    if (p.finish > horizon) continue;  // never completes inside the run

    AsyncUpdateEvent e;
    e.time = p.finish;
    e.device = p.device;
    e.based_on_version = p.based_on_version;
    e.applied_version = version;
    e.staleness = version - p.based_on_version;
    e.compute_time = p.compute_time;
    e.comm_time = p.comm_time;
    e.energy = p.energy;
    result.events.push_back(e);
    result.total_energy += p.energy;
    ++result.updates_per_device[p.device];

    ++version;  // the server integrates the update
    queue.push(schedule(p.device, p.finish, version));
  }
  // The priority queue pops in time order already, but make it explicit.
  std::sort(result.events.begin(), result.events.end(),
            [](const AsyncUpdateEvent& a, const AsyncUpdateEvent& b) {
              return a.time < b.time;
            });
  FEDRA_TELEMETRY_IF {
    namespace tel = fedra::telemetry;
    static auto updates =
        tel::Telemetry::metrics().counter("sim.async_updates");
    static auto staleness = tel::Telemetry::metrics().histogram(
        "sim.async_staleness", tel::exponential_bounds(1.0, 2.0, 16));
    updates.add(result.events.size());
    for (const auto& e : result.events) {
      staleness.record(static_cast<double>(e.staleness));
    }
  }
  return result;
}

}  // namespace fedra
