// Mobile-device profile: the per-device constants of the paper's system
// model (Table I). All quantities are SI: bits, cycles, Hz, seconds,
// joules, watts.
#pragma once

#include <cstddef>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fedra {

struct DeviceProfile {
  /// c_i — CPU cycles to process one bit of training data (the paper
  /// profiles cycles per sample; per-bit times dataset bits is the same
  /// product tau * c_i * D_i).
  double cycles_per_bit = 20.0;
  /// D_i — local dataset size in bits.
  double dataset_bits = 6e8;
  /// alpha_i — effective capacitance coefficient of the chipset (Eq. 6).
  double capacitance = 2e-28;
  /// delta_i^max — maximum CPU-cycle frequency in Hz.
  double max_freq_hz = 1.5e9;
  /// e_i — radio transmit power in watts (energy per second of upload).
  double tx_power_w = 1.0;

  /// Total CPU cycles for one local round of tau passes (tau * c_i * D_i).
  double cycles_per_round(double tau) const {
    return tau * cycles_per_bit * dataset_bits;
  }

  /// Eq. (1): computational time at frequency delta (Hz).
  double compute_time(double freq_hz, double tau) const {
    FEDRA_EXPECTS(freq_hz > 0.0);
    return cycles_per_round(tau) / freq_hz;
  }

  /// Computation part of Eq. (6): tau * alpha_i * c_i * D_i * delta^2.
  /// (The paper writes alpha*c*D*delta^2 with tau folded into the profiled
  /// constants; we keep tau explicit so tau sweeps stay consistent.)
  double compute_energy(double freq_hz, double tau) const {
    FEDRA_EXPECTS(freq_hz >= 0.0);
    return tau * capacitance * cycles_per_bit * dataset_bits * freq_hz *
           freq_hz;
  }

  /// Communication part of Eq. (6): e_i * t_com.
  double comm_energy(double comm_time_s) const {
    FEDRA_EXPECTS(comm_time_s >= 0.0);
    return tx_power_w * comm_time_s;
  }

  /// Frequency needed to finish computation in exactly `time_s` seconds
  /// (unclamped; callers clamp to (0, max_freq_hz]).
  double freq_for_compute_time(double time_s, double tau) const {
    FEDRA_EXPECTS(time_s > 0.0);
    return cycles_per_round(tau) / time_s;
  }

  /// Fastest possible computation time (at delta_i^max).
  double min_compute_time(double tau) const {
    return compute_time(max_freq_hz, tau);
  }
};

/// Distributions of the paper's evaluation settings (Section V-A):
/// D_i ~ U(50, 100) MB, c_i ~ U(10, 30) cycles/bit,
/// delta_i^max ~ U(1.0, 2.0) GHz. Capacitance and radio power are not
/// stated in the paper; defaults follow the DVFS literature the paper
/// cites (Burd & Brodersen; Tran et al.).
struct FleetModel {
  double dataset_mb_min = 50.0;
  double dataset_mb_max = 100.0;
  /// Fraction of the local dataset actually processed per training pass
  /// (minibatch sampling — FL clients train on a sampled subset per round,
  /// not the full store). Scales the compute/energy volume c_i * D_i; the
  /// 0.25 default calibrates per-iteration times and computational
  /// energies to the ranges the paper reports (T ~ 6 s, E_cmp ~ 1.5 J).
  double processed_fraction = 0.25;
  double cycles_per_bit_min = 10.0;
  double cycles_per_bit_max = 30.0;
  double max_freq_ghz_min = 1.0;
  double max_freq_ghz_max = 2.0;
  double capacitance = 2e-28;
  double tx_power_w_min = 0.5;
  double tx_power_w_max = 1.5;
};

/// Samples N device profiles from the fleet model.
std::vector<DeviceProfile> make_fleet(std::size_t n, const FleetModel& model,
                                      Rng& rng);

}  // namespace fedra
