// StepOptions — the one options bag behind the unified simulator API.
//
// The simulator surface used to accrete overloads as scenarios grew:
// step(freqs), step(freqs, participating), preview(freqs, start_time)...
// Every new axis (deadlines, faults) would have doubled that set again.
// Instead, one entry point takes the frequency vector plus a StepOptions:
//
//   sim.step(freqs, {});                                  // plain round
//   sim.step(freqs, StepOptions::with_participants(mask)); // selection
//   sim.step(freqs, {.deadline = 15.0});                   // server timeout
//   sim.step(freqs, {.fault_model = &faults});             // churn injection
//   sim.preview(freqs, StepOptions::dry_run(t));           // no state change
//
// Fleet-scale knobs ride in the same bag: `outcomes` picks how per-device
// results are materialized (rows / columns / summary) and `pool` supplies
// the thread pool the blocked round engine shards across.
#pragma once

#include <optional>
#include <vector>

#include "fault/fault_model.hpp"
#include "sim/cost_model.hpp"

namespace fedra {

class ThreadPool;

struct StepOptions {
  /// Participation mask (client selection): devices with a false entry sit
  /// the round out entirely. Non-owning; must outlive the call. nullptr =
  /// everyone participates. At least one entry must be true.
  const std::vector<bool>* participating = nullptr;

  /// Round deadline tau_round in seconds, measured from the round start:
  /// a device still running at the deadline is timed out — its update is
  /// lost, the energy it actually spent (compute, upload attempts) is
  /// still charged, and it stops gating the barrier beyond the deadline.
  /// <= 0 means no deadline.
  double deadline = 0.0;

  /// Fault model drawn against the simulator's iteration counter. A real
  /// step() advances the model's crash chain; preview()/dry runs only
  /// peek. nullptr or a disabled model = fault-free round.
  fault::FaultModel* fault_model = nullptr;

  /// Explicit fault assignment for this round (overrides fault_model) —
  /// the hook tests use to inject exact failure scenarios. Non-owning;
  /// must match num_devices().
  const fault::RoundFaults* faults = nullptr;

  /// When set, the round is computed from this start time WITHOUT
  /// advancing the clock, the iteration counter, or the fault model
  /// (what preview(freqs, start_time) used to do).
  std::optional<double> dry_run_at;

  /// How the result stores per-device outcomes. kAuto keeps the familiar
  /// row structs up to the engine's columnar threshold and switches to
  /// columns beyond it; kSummary skips per-device storage entirely (the
  /// cheapest way to price a million-device round). Aggregates, cost and
  /// reward are bit-identical across layouts.
  OutcomeLayout outcomes = OutcomeLayout::kAuto;

  /// Thread pool the round engine shards device blocks across (results
  /// are bit-identical for every pool size, including 1). nullptr = the
  /// process-wide global_pool(). Non-owning.
  ThreadPool* pool = nullptr;

  /// Convenience: options with only a participation mask (the old
  /// step(freqs, participating) call).
  static StepOptions with_participants(const std::vector<bool>& mask) {
    StepOptions opts;
    opts.participating = &mask;
    return opts;
  }

  /// Convenience: options for a preview at `start_time` (the old
  /// preview(freqs, start_time) call).
  static StepOptions dry_run(double start_time) {
    StepOptions opts;
    opts.dry_run_at = start_time;
    return opts;
  }
};

}  // namespace fedra
