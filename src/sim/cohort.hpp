// Cohort sampling — the bridge between fleet-scale pricing and
// testbed-scale training.
//
// At population scale the server does not train every device each round:
// FedAvg aggregates a sampled cohort, while the cost model (and the DRL
// controller's reward) still prices the full fleet's round. sample_cohort
// picks k of n devices per (seed, round) by ranking a per-device
// SplitMix64 key — a pure function of (seed, round, device_id), so the
// cohort is independent of iteration order, device count elsewhere, and
// platform, and two shards sampling the same round agree without
// coordination. The k chosen devices are returned sorted by id, ready to
// drive a StepOptions participation mask or an fl::FedAvg roster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedra {

/// A sampled per-round training cohort: `indices` are the chosen device
/// ids in increasing order.
struct Cohort {
  std::vector<std::size_t> indices;

  std::size_t size() const { return indices.size(); }
  bool empty() const { return indices.empty(); }

  /// Participation mask over an n-device fleet (true = in the cohort) —
  /// the shape StepOptions::participating consumes.
  std::vector<bool> mask(std::size_t fleet_size) const;
};

/// Samples k of `fleet_size` devices for `round`. Deterministic in
/// (seed, round): device i's rank key is a SplitMix64 hash of the triple,
/// ties broken by id, the k smallest win. k >= fleet_size returns everyone.
Cohort sample_cohort(std::size_t fleet_size, std::size_t k,
                     std::uint64_t seed, std::size_t round);

}  // namespace fedra
