// One struct holding every constant of an evaluation scenario, so benches,
// examples and tests share a single source of truth instead of magic
// numbers. Defaults reproduce the paper's testbed setting (Section V-A).
#pragma once

#include <cstddef>
#include <string>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace fedra {

struct ExperimentConfig {
  /// Number of participating mobile devices (paper: 3 testbed, 50 sim).
  std::size_t num_devices = 3;
  /// Trace preset fed to the generator ("lte_walking" or "hsdpa_bus").
  std::string trace_preset = "lte_walking";
  /// Length of each generated trace in samples (1 s resolution).
  std::size_t trace_samples = 3000;
  /// Distinct traces to draw device connections from (paper: 3 walking
  /// traces on the testbed, 5 for the 50-device simulation; devices pick
  /// one each). 0 means one private trace per device.
  std::size_t trace_pool = 0;
  /// Slot width h in seconds for bandwidth history (paper: "tens of
  /// seconds"; we default to 10 s).
  double slot_seconds = 10.0;
  /// History depth H: the state holds H+1 slot averages per device.
  std::size_t history_slots = 8;
  /// Eq. (9)/(13) parameters.
  CostParams cost;
  /// Device-population distributions.
  FleetModel fleet;
  /// Master seed; all randomness derives from it.
  std::uint64_t seed = 42;
};

/// The paper's 3-device testbed configuration.
ExperimentConfig testbed_config();

/// The paper's 50-device scalability simulation (5 shared walking traces,
/// lambda = 0.1).
ExperimentConfig scale_config();

/// Builds the simulator for a config: samples the fleet, generates the
/// trace pool, assigns one trace per device, and wires the cost model.
FlSimulator build_simulator(const ExperimentConfig& config);

/// Fleet-scale build: samples the fleet with order-independent per-device
/// draws (make_fleet_state) and assigns pool traces by a pure
/// (seed, device) hash into a shared TraceTable — no per-device trace
/// copies, so num_devices can be 10^6. The trace pool itself is generated
/// from the same seed-derived stream as build_simulator; the fleet and
/// assignment use the counter-based path (build_simulator's sequential
/// golden fleets are unchanged).
FlSimulator build_fleet_simulator(const ExperimentConfig& config);

}  // namespace fedra
