#include "sim/fleet_state.hpp"

#include "util/rng.hpp"

namespace fedra {

namespace {

void validate_model(const FleetModel& model) {
  FEDRA_EXPECTS(model.dataset_mb_min > 0.0 &&
                model.dataset_mb_min <= model.dataset_mb_max);
  FEDRA_EXPECTS(model.processed_fraction > 0.0 &&
                model.processed_fraction <= 1.0);
  FEDRA_EXPECTS(model.cycles_per_bit_min > 0.0 &&
                model.cycles_per_bit_min <= model.cycles_per_bit_max);
  FEDRA_EXPECTS(model.max_freq_ghz_min > 0.0 &&
                model.max_freq_ghz_min <= model.max_freq_ghz_max);
}

}  // namespace

FleetState::FleetState(const std::vector<DeviceProfile>& devices) {
  reserve(devices.size());
  for (const auto& d : devices) push_back(d);
}

void FleetState::reserve(std::size_t n) {
  cycles_per_bit_.reserve(n);
  dataset_bits_.reserve(n);
  capacitance_.reserve(n);
  max_freq_hz_.reserve(n);
  tx_power_w_.reserve(n);
}

void FleetState::push_back(const DeviceProfile& d) {
  cycles_per_bit_.push_back(d.cycles_per_bit);
  dataset_bits_.push_back(d.dataset_bits);
  capacitance_.push_back(d.capacitance);
  max_freq_hz_.push_back(d.max_freq_hz);
  tx_power_w_.push_back(d.tx_power_w);
}

void FleetState::resize(std::size_t n) {
  const DeviceProfile d;
  cycles_per_bit_.resize(n, d.cycles_per_bit);
  dataset_bits_.resize(n, d.dataset_bits);
  capacitance_.resize(n, d.capacitance);
  max_freq_hz_.resize(n, d.max_freq_hz);
  tx_power_w_.resize(n, d.tx_power_w);
}

std::vector<DeviceProfile> FleetState::to_profiles() const {
  std::vector<DeviceProfile> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(device(i));
  return out;
}

DeviceProfile sample_device(const FleetModel& model, std::uint64_t seed,
                            std::uint64_t device_id) {
  // Pure hash of (seed, device_id): two SplitMix64 steps mix the pair into
  // a stream seed that is stable across fill order and fleet size.
  SplitMix64 mix(seed ^ (device_id * 0x9e3779b97f4a7c15ULL));
  Rng rng(mix.next());
  constexpr double kBitsPerMb = 8e6;
  constexpr double kHzPerGhz = 1e9;
  DeviceProfile d;
  d.dataset_bits =
      rng.uniform(model.dataset_mb_min, model.dataset_mb_max) * kBitsPerMb *
      model.processed_fraction;
  d.cycles_per_bit =
      rng.uniform(model.cycles_per_bit_min, model.cycles_per_bit_max);
  d.max_freq_hz =
      rng.uniform(model.max_freq_ghz_min, model.max_freq_ghz_max) * kHzPerGhz;
  d.capacitance = model.capacitance;
  d.tx_power_w = rng.uniform(model.tx_power_w_min, model.tx_power_w_max);
  return d;
}

void fill_fleet_range(FleetState& out, std::size_t begin, std::size_t end,
                      const FleetModel& model, std::uint64_t seed) {
  FEDRA_EXPECTS(begin <= end && end <= out.size());
  validate_model(model);
  for (std::size_t i = begin; i < end; ++i) {
    out.set_device(i, sample_device(model, seed, i));
  }
}

FleetState make_fleet_state(std::size_t n, const FleetModel& model,
                            std::uint64_t seed) {
  FEDRA_EXPECTS(n > 0);
  FleetState fleet;
  fleet.resize(n);
  fill_fleet_range(fleet, 0, n, model, seed);
  return fleet;
}

}  // namespace fedra
