#include "sim/simulator_base.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/fleet_pricing.hpp"
#include "trace/transforms.hpp"
#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace fedra {

namespace {

/// One segment of a device's round timeline. Energy is spent uniformly
/// over the segment (constant power), which makes mid-segment cutoffs
/// exact: a device cut at fraction x of a segment is charged x of its
/// energy.
struct TimelinePhase {
  enum Kind { kCompute, kComm, kWait };
  double duration = 0.0;
  double energy = 0.0;
  Kind kind = kCompute;
};

/// Replays `phases` up to `cut` seconds after the round start and writes
/// the realized per-phase times and energies into `out`. `cut` may be
/// infinity (no cutoff).
void apply_timeline(const std::vector<TimelinePhase>& phases, double cut,
                    DeviceOutcome& out) {
  out.compute_time = 0.0;
  out.comm_time = 0.0;
  out.compute_energy = 0.0;
  out.comm_energy = 0.0;
  double t = 0.0;
  for (const auto& phase : phases) {
    if (t >= cut) break;
    const double run = std::min(phase.duration, cut - t);
    const double frac = phase.duration > 0.0 ? run / phase.duration : 1.0;
    const double spent = phase.energy * frac;
    switch (phase.kind) {
      case TimelinePhase::kCompute:
        out.compute_time += run;
        out.compute_energy += spent;
        break;
      case TimelinePhase::kComm:
        out.comm_time += run;
        out.comm_energy += spent;
        break;
      case TimelinePhase::kWait:
        break;  // backoff: time passes, no energy
    }
    t += run;
  }
  out.total_time = t;
  out.energy = out.compute_energy + out.comm_energy;
}

/// Per-thread scratch columns for one pricing block (reused across blocks
/// and rounds; capacity grows to kPricingBlock once and stays).
struct BlockScratch {
  std::vector<double> freq;
  std::vector<double> tcmp;
  std::vector<double> ecmp;
  std::vector<std::size_t> solve_idx;
  std::vector<double> solve_start;
  std::vector<double> solve_end;

  void ensure(std::size_t n) {
    if (freq.size() < n) {
      freq.resize(n);
      tcmp.resize(n);
      ecmp.resize(n);
    }
  }
};

BlockScratch& block_scratch() {
  thread_local BlockScratch s;
  return s;
}

}  // namespace

/// Partial round totals for one pricing block, accumulated sequentially in
/// device order and combined across blocks in block order.
struct SimulatorBase::BlockTotals {
  double energy = 0.0;
  double compute_energy = 0.0;
  double makespan = 0.0;
  std::size_t scheduled = 0;
  std::size_t completed = 0;
  std::size_t crashes = 0;
  std::size_t dropouts = 0;
  std::size_t timeouts = 0;
  std::size_t upload_failures = 0;
  std::size_t retries = 0;
};

SimulatorBase::SimulatorBase(std::vector<DeviceProfile> devices,
                             std::vector<BandwidthTrace> traces,
                             CostParams params, double start_time)
    : SimulatorBase(FleetState(devices), TraceTable(std::move(traces)),
                    params, start_time) {}

SimulatorBase::SimulatorBase(FleetState fleet, TraceTable traces,
                             CostParams params, double start_time)
    : now_(start_time),
      fleet_(std::move(fleet)),
      traces_(std::move(traces)),
      params_(params) {
  FEDRA_EXPECTS(!fleet_.empty());
  FEDRA_EXPECTS(fleet_.size() == traces_.size());
  FEDRA_EXPECTS(params_.tau > 0.0);
  FEDRA_EXPECTS(params_.model_bytes > 0.0);
  FEDRA_EXPECTS(start_time >= 0.0);
}

void SimulatorBase::reset(double start_time) {
  FEDRA_EXPECTS(start_time >= 0.0);
  now_ = start_time;
  iteration_ = 0;
}

bool SimulatorBase::resolve_faults(const StepOptions& options, bool advance,
                                   fault::RoundFaults* storage) const {
  if (options.faults != nullptr) {
    FEDRA_EXPECTS(options.faults->devices.size() == fleet_.size());
    *storage = *options.faults;
    return true;
  }
  if (options.fault_model != nullptr && options.fault_model->enabled()) {
    *storage = advance
                   ? options.fault_model->advance(iteration_, num_devices())
                   : options.fault_model->peek(iteration_, num_devices());
    return true;
  }
  return false;
}

void SimulatorBase::faulty_device_round(const DeviceProfile& dev,
                                        const BandwidthTrace& base_trace,
                                        const fault::DeviceFault& f,
                                        double start_time, double deadline,
                                        DeviceOutcome& out) const {
  // Radio outage: the device uploads against a blacked-out copy of its
  // trace for this round only (the DRL state keeps seeing the measured
  // base trace — outages are not announced in advance).
  BandwidthTrace blacked;
  const BandwidthTrace* trace = &base_trace;
  if (f.blackout_duration > 0.0) {
    blacked = blackout_trace(base_trace, start_time + f.blackout_offset,
                             f.blackout_duration);
    trace = &blacked;
  }

  std::vector<TimelinePhase> phases;
  phases.reserve(2 * (f.failed_uploads + 1));

  // Compute, stretched by background load. The CPU stays busy at freq_hz
  // for the whole stretched interval, so energy scales with the slowdown.
  TimelinePhase compute;
  compute.kind = TimelinePhase::kCompute;
  compute.duration =
      dev.compute_time(out.freq_hz, params_.tau) * f.compute_slowdown;
  compute.energy =
      dev.compute_energy(out.freq_hz, params_.tau) * f.compute_slowdown;
  phases.push_back(compute);

  // Upload attempts: `failed_uploads` failures, then one success unless
  // the retry budget is exhausted. Each attempt moves the (degraded)
  // payload through the trace integral from its own start time; failed
  // attempts back off exponentially before the next try.
  const double payload = params_.model_bytes * f.upload_slowdown;
  const std::size_t attempts = f.failed_uploads + (f.upload_exhausted ? 0 : 1);
  double t = start_time + compute.duration;
  double last_attempt_duration = 0.0;
  for (std::size_t a = 0; a < attempts; ++a) {
    const double end = trace->upload_finish_time(t, payload);
    TimelinePhase up;
    up.kind = TimelinePhase::kComm;
    up.duration = end - t;
    up.energy = dev.comm_energy(up.duration);
    phases.push_back(up);
    last_attempt_duration = up.duration;
    t = end;
    if (a + 1 < attempts) {
      TimelinePhase wait;
      wait.kind = TimelinePhase::kWait;
      wait.duration = f.retry_backoff_s * static_cast<double>(1ULL << a);
      phases.push_back(wait);
      t += wait.duration;
    }
  }

  double full = 0.0;
  for (const auto& phase : phases) full += phase.duration;

  // Resolution: when does the server learn this device's fate?
  double resolution = full;
  DeviceFailure failure =
      f.upload_exhausted ? DeviceFailure::kUpload : DeviceFailure::kNone;
  if (f.dropout) {
    resolution = f.dropout_frac * full;
    failure = DeviceFailure::kDropout;
  }
  if (resolution > deadline) {
    resolution = deadline;  // the server cut the round first
    failure = DeviceFailure::kTimeout;
  }

  apply_timeline(phases, resolution, out);
  out.completed = failure == DeviceFailure::kNone;
  out.failure = failure;
  out.retries =
      f.upload_exhausted ? f.failed_uploads - 1 : f.failed_uploads;
  out.avg_bandwidth =
      out.completed && last_attempt_duration > 0.0
          ? params_.model_bytes / last_attempt_duration
          : 0.0;
}

void SimulatorBase::price_block(std::size_t begin, std::size_t end,
                                const std::vector<double>& freqs_hz,
                                const std::vector<bool>* participating,
                                const fault::RoundFaults* faults,
                                double start_time, double deadline,
                                IterationResult& result,
                                BlockTotals& totals) const {
  const std::size_t bn = end - begin;
  BlockScratch& s = block_scratch();
  s.ensure(bn);

  // Compute-side pricing for the whole block through the SIMD-dispatched
  // kernel. Masked/crashed lanes are priced too and overwritten below —
  // the kernel is pure, so the dead lanes cost cycles, not correctness.
  const FleetView view(fleet_);
  fleet::price_compute(bn, params_.tau, kMinFreqFraction,
                       view.cycles_per_bit().data() + begin,
                       view.dataset_bits().data() + begin,
                       view.capacitance().data() + begin,
                       view.max_freq_hz().data() + begin,
                       freqs_hz.data() + begin, s.freq.data(), s.tcmp.data(),
                       s.ecmp.data());

  // Collect the lanes that take the fault-free upload path and solve their
  // trace integrals in lockstep batches (device order preserved).
  s.solve_idx.clear();
  s.solve_start.clear();
  for (std::size_t k = 0; k < bn; ++k) {
    const std::size_t i = begin + k;
    if (participating != nullptr && !(*participating)[i]) continue;
    const fault::DeviceFault* df =
        faults != nullptr ? &faults->devices[i] : nullptr;
    if (df != nullptr && (df->crashed || df->faulty())) continue;
    s.solve_idx.push_back(i);
    s.solve_start.push_back(start_time + s.tcmp[k]);
  }
  s.solve_end.resize(s.solve_idx.size());
  traces_.upload_finish_times(s.solve_idx.data(), s.solve_idx.size(),
                              s.solve_start.data(), params_.model_bytes,
                              s.solve_end.data());

  const auto store = [&result](std::size_t i, const DeviceOutcome& out) {
    switch (result.layout) {
      case OutcomeLayout::kRows:
        result.devices[i] = out;
        break;
      case OutcomeLayout::kColumns:
        result.columns.set_row(i, out);
        break;
      default:
        break;  // kSummary: aggregates only
    }
  };

  // Assembly pass: per-device branch structure and accumulation order
  // identical to the legacy sequential engine.
  std::size_t solve_pos = 0;
  for (std::size_t k = 0; k < bn; ++k) {
    const std::size_t i = begin + k;
    DeviceOutcome out;
    if (participating != nullptr && !(*participating)[i]) {
      out.participated = false;  // all fields stay zero; no barrier share
      out.completed = false;
      store(i, out);
      continue;
    }
    ++totals.scheduled;

    const fault::DeviceFault* df =
        faults != nullptr ? &faults->devices[i] : nullptr;
    if (df != nullptr && df->crashed) {
      // Down before the round started: the server skips a known-dead
      // connection — no time, no energy, no barrier contribution.
      out.completed = false;
      out.failure = DeviceFailure::kCrash;
      ++totals.crashes;
      store(i, out);
      continue;
    }

    out.freq_hz = s.freq[k];

    if (df == nullptr || !df->faulty()) {
      // Fault-free timeline from the precomputed columns — same values,
      // same operation order as the per-device scalar path.
      out.compute_time = s.tcmp[k];
      const double upload_start = s.solve_start[solve_pos];
      const double upload_end = s.solve_end[solve_pos];
      ++solve_pos;
      out.comm_time = upload_end - upload_start;
      out.total_time = out.compute_time + out.comm_time;
      out.avg_bandwidth = out.comm_time > 0.0
                              ? params_.model_bytes / out.comm_time
                              : traces_[i].bandwidth_at(upload_start);

      out.compute_energy = s.ecmp[k];
      out.comm_energy = view.tx_power_w(i) * out.comm_time;
      out.energy = out.compute_energy + out.comm_energy;

      if (out.total_time > deadline) {
        // Healthy but too slow: the server cut the round at the deadline.
        std::vector<TimelinePhase> phases(2);
        phases[0] = {out.compute_time, out.compute_energy,
                     TimelinePhase::kCompute};
        phases[1] = {out.comm_time, out.comm_energy, TimelinePhase::kComm};
        apply_timeline(phases, deadline, out);
        out.completed = false;
        out.failure = DeviceFailure::kTimeout;
        out.avg_bandwidth = 0.0;  // no completed upload to estimate from
      }
    } else {
      faulty_device_round(fleet_.device(i), traces_[i], *df, start_time,
                          deadline, out);
    }

    switch (out.failure) {
      case DeviceFailure::kDropout: ++totals.dropouts; break;
      case DeviceFailure::kTimeout: ++totals.timeouts; break;
      case DeviceFailure::kUpload: ++totals.upload_failures; break;
      case DeviceFailure::kNone:
      case DeviceFailure::kCrash: break;
    }
    totals.retries += out.retries;
    if (out.completed) ++totals.completed;

    totals.energy += out.energy;
    totals.compute_energy += out.compute_energy;
    totals.makespan = std::max(totals.makespan, out.total_time);
    store(i, out);
  }
}

IterationResult SimulatorBase::compute_round(
    const std::vector<double>& freqs_hz, const StepOptions& options,
    const fault::RoundFaults* faults, double start_time,
    bool barrier_idle) const {
  const std::size_t n = fleet_.size();
  FEDRA_EXPECTS(freqs_hz.size() == n);
  const std::vector<bool>* participating = options.participating;
  if (participating != nullptr) {
    FEDRA_EXPECTS(participating->size() == n);
    FEDRA_EXPECTS(std::find(participating->begin(), participating->end(),
                            true) != participating->end());
  }
  if (faults != nullptr) {
    FEDRA_EXPECTS(faults->devices.size() == n);
  }
  const double deadline = options.deadline > 0.0
                              ? options.deadline
                              : std::numeric_limits<double>::infinity();

  IterationResult result;
  result.start_time = start_time;
  OutcomeLayout layout = options.outcomes;
  if (layout == OutcomeLayout::kAuto) {
    layout = n <= kColumnarThreshold ? OutcomeLayout::kRows
                                     : OutcomeLayout::kColumns;
  }
  result.layout = layout;
  if (layout == OutcomeLayout::kRows) {
    result.devices.resize(n);
  } else if (layout == OutcomeLayout::kColumns) {
    result.columns.resize(n);
  }

  // Price in fixed blocks. Boundaries depend only on n, blocks write
  // disjoint slots and their own totals, and partials combine in block
  // order below — so any pool size (or none) produces identical bits.
  const std::size_t nblocks = (n + kPricingBlock - 1) / kPricingBlock;
  std::vector<BlockTotals> totals(nblocks);
  const auto run_block = [&](std::size_t b) {
    const std::size_t begin = b * kPricingBlock;
    const std::size_t end = std::min(n, begin + kPricingBlock);
    price_block(begin, end, freqs_hz, participating, faults, start_time,
                deadline, result, totals[b]);
  };
  if (nblocks <= 1) {
    run_block(0);
  } else {
    ThreadPool& pool =
        options.pool != nullptr ? *options.pool : global_pool();
    pool.parallel_for(0, nblocks, run_block);
  }

  double makespan = 0.0;
  for (const BlockTotals& t : totals) {
    result.num_scheduled += t.scheduled;
    result.num_completed += t.completed;
    result.num_crashes += t.crashes;
    result.num_dropouts += t.dropouts;
    result.num_timeouts += t.timeouts;
    result.num_upload_failures += t.upload_failures;
    result.total_retries += t.retries;
    result.total_energy += t.energy;
    result.total_compute_energy += t.compute_energy;
    makespan = std::max(makespan, t.makespan);
  }

  result.iteration_time = makespan;
  // Second pass: idle time needs the round makespan.
  if (layout == OutcomeLayout::kRows) {
    for (auto& out : result.devices) {
      out.idle_time = barrier_idle && out.participated && out.completed
                          ? makespan - out.total_time
                          : 0.0;
    }
  } else if (layout == OutcomeLayout::kColumns) {
    auto& c = result.columns;
    for (std::size_t i = 0; i < c.size(); ++i) {
      c.idle_time[i] =
          barrier_idle && c.participated[i] != 0 && c.completed[i] != 0
              ? makespan - c.total_time[i]
              : 0.0;
    }
  }
  result.cost = iteration_cost(makespan, result.total_energy, params_);
  result.reward = iteration_reward(makespan, result.total_energy, params_);
  return result;
}

}  // namespace fedra
