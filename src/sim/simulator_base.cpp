#include "sim/simulator_base.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "trace/transforms.hpp"
#include "util/contracts.hpp"

namespace fedra {

namespace {

/// One segment of a device's round timeline. Energy is spent uniformly
/// over the segment (constant power), which makes mid-segment cutoffs
/// exact: a device cut at fraction x of a segment is charged x of its
/// energy.
struct TimelinePhase {
  enum Kind { kCompute, kComm, kWait };
  double duration = 0.0;
  double energy = 0.0;
  Kind kind = kCompute;
};

/// Replays `phases` up to `cut` seconds after the round start and writes
/// the realized per-phase times and energies into `out`. `cut` may be
/// infinity (no cutoff).
void apply_timeline(const std::vector<TimelinePhase>& phases, double cut,
                    DeviceOutcome& out) {
  out.compute_time = 0.0;
  out.comm_time = 0.0;
  out.compute_energy = 0.0;
  out.comm_energy = 0.0;
  double t = 0.0;
  for (const auto& phase : phases) {
    if (t >= cut) break;
    const double run = std::min(phase.duration, cut - t);
    const double frac = phase.duration > 0.0 ? run / phase.duration : 1.0;
    const double spent = phase.energy * frac;
    switch (phase.kind) {
      case TimelinePhase::kCompute:
        out.compute_time += run;
        out.compute_energy += spent;
        break;
      case TimelinePhase::kComm:
        out.comm_time += run;
        out.comm_energy += spent;
        break;
      case TimelinePhase::kWait:
        break;  // backoff: time passes, no energy
    }
    t += run;
  }
  out.total_time = t;
  out.energy = out.compute_energy + out.comm_energy;
}

}  // namespace

SimulatorBase::SimulatorBase(std::vector<DeviceProfile> devices,
                             std::vector<BandwidthTrace> traces,
                             CostParams params, double start_time)
    : now_(start_time),
      devices_(std::move(devices)),
      traces_(std::move(traces)),
      params_(params) {
  FEDRA_EXPECTS(!devices_.empty());
  FEDRA_EXPECTS(devices_.size() == traces_.size());
  FEDRA_EXPECTS(params_.tau > 0.0);
  FEDRA_EXPECTS(params_.model_bytes > 0.0);
  FEDRA_EXPECTS(start_time >= 0.0);
}

void SimulatorBase::reset(double start_time) {
  FEDRA_EXPECTS(start_time >= 0.0);
  now_ = start_time;
  iteration_ = 0;
}

bool SimulatorBase::resolve_faults(const StepOptions& options, bool advance,
                                   fault::RoundFaults* storage) const {
  if (options.faults != nullptr) {
    FEDRA_EXPECTS(options.faults->devices.size() == devices_.size());
    *storage = *options.faults;
    return true;
  }
  if (options.fault_model != nullptr && options.fault_model->enabled()) {
    *storage = advance
                   ? options.fault_model->advance(iteration_, num_devices())
                   : options.fault_model->peek(iteration_, num_devices());
    return true;
  }
  return false;
}

void SimulatorBase::faulty_device_round(std::size_t device,
                                        const fault::DeviceFault& f,
                                        double start_time, double deadline,
                                        DeviceOutcome& out) const {
  const DeviceProfile& dev = devices_[device];

  // Radio outage: the device uploads against a blacked-out copy of its
  // trace for this round only (the DRL state keeps seeing the measured
  // base trace — outages are not announced in advance).
  BandwidthTrace blacked;
  const BandwidthTrace* trace = &traces_[device];
  if (f.blackout_duration > 0.0) {
    blacked = blackout_trace(traces_[device], start_time + f.blackout_offset,
                             f.blackout_duration);
    trace = &blacked;
  }

  std::vector<TimelinePhase> phases;
  phases.reserve(2 * (f.failed_uploads + 1));

  // Compute, stretched by background load. The CPU stays busy at freq_hz
  // for the whole stretched interval, so energy scales with the slowdown.
  TimelinePhase compute;
  compute.kind = TimelinePhase::kCompute;
  compute.duration =
      dev.compute_time(out.freq_hz, params_.tau) * f.compute_slowdown;
  compute.energy =
      dev.compute_energy(out.freq_hz, params_.tau) * f.compute_slowdown;
  phases.push_back(compute);

  // Upload attempts: `failed_uploads` failures, then one success unless
  // the retry budget is exhausted. Each attempt moves the (degraded)
  // payload through the trace integral from its own start time; failed
  // attempts back off exponentially before the next try.
  const double payload = params_.model_bytes * f.upload_slowdown;
  const std::size_t attempts = f.failed_uploads + (f.upload_exhausted ? 0 : 1);
  double t = start_time + compute.duration;
  double last_attempt_duration = 0.0;
  for (std::size_t a = 0; a < attempts; ++a) {
    const double end = trace->upload_finish_time(t, payload);
    TimelinePhase up;
    up.kind = TimelinePhase::kComm;
    up.duration = end - t;
    up.energy = dev.comm_energy(up.duration);
    phases.push_back(up);
    last_attempt_duration = up.duration;
    t = end;
    if (a + 1 < attempts) {
      TimelinePhase wait;
      wait.kind = TimelinePhase::kWait;
      wait.duration = f.retry_backoff_s * static_cast<double>(1ULL << a);
      phases.push_back(wait);
      t += wait.duration;
    }
  }

  double full = 0.0;
  for (const auto& phase : phases) full += phase.duration;

  // Resolution: when does the server learn this device's fate?
  double resolution = full;
  DeviceFailure failure =
      f.upload_exhausted ? DeviceFailure::kUpload : DeviceFailure::kNone;
  if (f.dropout) {
    resolution = f.dropout_frac * full;
    failure = DeviceFailure::kDropout;
  }
  if (resolution > deadline) {
    resolution = deadline;  // the server cut the round first
    failure = DeviceFailure::kTimeout;
  }

  apply_timeline(phases, resolution, out);
  out.completed = failure == DeviceFailure::kNone;
  out.failure = failure;
  out.retries =
      f.upload_exhausted ? f.failed_uploads - 1 : f.failed_uploads;
  out.avg_bandwidth =
      out.completed && last_attempt_duration > 0.0
          ? params_.model_bytes / last_attempt_duration
          : 0.0;
}

IterationResult SimulatorBase::compute_round(
    const std::vector<double>& freqs_hz, const StepOptions& options,
    const fault::RoundFaults* faults, double start_time,
    bool barrier_idle) const {
  FEDRA_EXPECTS(freqs_hz.size() == devices_.size());
  const std::vector<bool>* participating = options.participating;
  if (participating != nullptr) {
    FEDRA_EXPECTS(participating->size() == devices_.size());
    FEDRA_EXPECTS(std::find(participating->begin(), participating->end(),
                            true) != participating->end());
  }
  if (faults != nullptr) {
    FEDRA_EXPECTS(faults->devices.size() == devices_.size());
  }
  const double deadline = options.deadline > 0.0
                              ? options.deadline
                              : std::numeric_limits<double>::infinity();

  IterationResult result;
  result.start_time = start_time;
  result.devices.resize(devices_.size());

  double makespan = 0.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const DeviceProfile& dev = devices_[i];
    DeviceOutcome& out = result.devices[i];
    if (participating != nullptr && !(*participating)[i]) {
      out.participated = false;  // all fields stay zero; no barrier share
      out.completed = false;
      continue;
    }
    ++result.num_scheduled;

    const fault::DeviceFault* df =
        faults != nullptr ? &faults->devices[i] : nullptr;
    if (df != nullptr && df->crashed) {
      // Down before the round started: the server skips a known-dead
      // connection — no time, no energy, no barrier contribution.
      out.completed = false;
      out.failure = DeviceFailure::kCrash;
      ++result.num_crashes;
      continue;
    }

    const double floor_hz = kMinFreqFraction * dev.max_freq_hz;
    out.freq_hz = std::clamp(freqs_hz[i], floor_hz, dev.max_freq_hz);

    if (df == nullptr || !df->faulty()) {
      // Fault-free timeline — kept operation-for-operation identical to
      // the pre-StepOptions engine so step(freqs, {}) is bit-exact with
      // the legacy step(freqs).
      out.compute_time = dev.compute_time(out.freq_hz, params_.tau);
      const double upload_start = start_time + out.compute_time;
      const double upload_end =
          traces_[i].upload_finish_time(upload_start, params_.model_bytes);
      out.comm_time = upload_end - upload_start;
      out.total_time = out.compute_time + out.comm_time;
      out.avg_bandwidth = out.comm_time > 0.0
                              ? params_.model_bytes / out.comm_time
                              : traces_[i].bandwidth_at(upload_start);

      out.compute_energy = dev.compute_energy(out.freq_hz, params_.tau);
      out.comm_energy = dev.comm_energy(out.comm_time);
      out.energy = out.compute_energy + out.comm_energy;

      if (out.total_time > deadline) {
        // Healthy but too slow: the server cut the round at the deadline.
        std::vector<TimelinePhase> phases(2);
        phases[0] = {out.compute_time, out.compute_energy,
                     TimelinePhase::kCompute};
        phases[1] = {out.comm_time, out.comm_energy, TimelinePhase::kComm};
        apply_timeline(phases, deadline, out);
        out.completed = false;
        out.failure = DeviceFailure::kTimeout;
        out.avg_bandwidth = 0.0;  // no completed upload to estimate from
      }
    } else {
      faulty_device_round(i, *df, start_time, deadline, out);
    }

    switch (out.failure) {
      case DeviceFailure::kDropout: ++result.num_dropouts; break;
      case DeviceFailure::kTimeout: ++result.num_timeouts; break;
      case DeviceFailure::kUpload: ++result.num_upload_failures; break;
      case DeviceFailure::kNone:
      case DeviceFailure::kCrash: break;
    }
    result.total_retries += out.retries;
    if (out.completed) ++result.num_completed;

    result.total_energy += out.energy;
    result.total_compute_energy += out.compute_energy;
    makespan = std::max(makespan, out.total_time);
  }

  result.iteration_time = makespan;
  for (auto& out : result.devices) {
    out.idle_time = barrier_idle && out.participated && out.completed
                        ? makespan - out.total_time
                        : 0.0;
  }
  result.cost = iteration_cost(makespan, result.total_energy, params_);
  result.reward = iteration_reward(makespan, result.total_energy, params_);
  return result;
}

}  // namespace fedra
