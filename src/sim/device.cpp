#include "sim/device.hpp"

namespace fedra {

std::vector<DeviceProfile> make_fleet(std::size_t n, const FleetModel& model,
                                      Rng& rng) {
  FEDRA_EXPECTS(n > 0);
  FEDRA_EXPECTS(model.dataset_mb_min > 0.0 &&
                model.dataset_mb_min <= model.dataset_mb_max);
  FEDRA_EXPECTS(model.processed_fraction > 0.0 &&
                model.processed_fraction <= 1.0);
  FEDRA_EXPECTS(model.cycles_per_bit_min > 0.0 &&
                model.cycles_per_bit_min <= model.cycles_per_bit_max);
  FEDRA_EXPECTS(model.max_freq_ghz_min > 0.0 &&
                model.max_freq_ghz_min <= model.max_freq_ghz_max);
  std::vector<DeviceProfile> fleet;
  fleet.reserve(n);
  constexpr double kBitsPerMb = 8e6;
  constexpr double kHzPerGhz = 1e9;
  for (std::size_t i = 0; i < n; ++i) {
    DeviceProfile d;
    d.dataset_bits =
        rng.uniform(model.dataset_mb_min, model.dataset_mb_max) * kBitsPerMb *
        model.processed_fraction;
    d.cycles_per_bit =
        rng.uniform(model.cycles_per_bit_min, model.cycles_per_bit_max);
    d.max_freq_hz =
        rng.uniform(model.max_freq_ghz_min, model.max_freq_ghz_max) *
        kHzPerGhz;
    d.capacitance = model.capacitance;
    d.tx_power_w = rng.uniform(model.tx_power_w_min, model.tx_power_w_max);
    fleet.push_back(d);
  }
  return fleet;
}

}  // namespace fedra
