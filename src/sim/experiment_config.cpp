#include "sim/experiment_config.hpp"

#include <cstdint>

#include "sim/fleet_state.hpp"
#include "trace/generator.hpp"
#include "trace/trace_table.hpp"

namespace fedra {

ExperimentConfig testbed_config() {
  ExperimentConfig c;
  c.num_devices = 3;
  c.trace_pool = 3;
  // The paper states lambda only for the 50-device simulation (0.1, where
  // the energy sum over 50 devices is naturally comparable to T^k). At
  // N = 3 the same absolute weight makes energy negligible and the
  // time/energy tradeoff degenerate; 0.25 restores the paper's testbed
  // cost breakdown (see DESIGN.md, calibration).
  c.cost.lambda = 0.25;
  return c;
}

ExperimentConfig scale_config() {
  ExperimentConfig c;
  c.num_devices = 50;
  c.trace_pool = 5;  // paper: five walking traces shared by 50 devices
  c.cost.lambda = 0.1;
  return c;
}

FlSimulator build_simulator(const ExperimentConfig& config) {
  FEDRA_EXPECTS(config.num_devices > 0);
  FEDRA_EXPECTS(config.trace_samples > 0);
  Rng rng(config.seed);
  Rng fleet_rng = rng.split();
  Rng trace_rng = rng.split();
  Rng assign_rng = rng.split();

  auto fleet = make_fleet(config.num_devices, config.fleet, fleet_rng);

  const std::size_t pool_size =
      config.trace_pool > 0 ? config.trace_pool : config.num_devices;
  auto pool = generate_trace_set(config.trace_preset, pool_size,
                                 config.trace_samples, trace_rng);

  std::vector<BandwidthTrace> traces;
  traces.reserve(config.num_devices);
  for (std::size_t i = 0; i < config.num_devices; ++i) {
    if (config.trace_pool == 0) {
      traces.push_back(pool[i]);
    } else {
      // Devices randomly pick one trace from the pool, as in the paper's
      // 50-device simulation.
      const auto pick = static_cast<std::size_t>(assign_rng.uniform_int(
          0, static_cast<std::int64_t>(pool.size()) - 1));
      traces.push_back(pool[pick]);
    }
  }
  return FlSimulator(std::move(fleet), std::move(traces), config.cost);
}

FlSimulator build_fleet_simulator(const ExperimentConfig& config) {
  FEDRA_EXPECTS(config.num_devices > 0);
  FEDRA_EXPECTS(config.trace_samples > 0);
  // Keep the trace pool on the same seed-derived stream slot as
  // build_simulator so both builds upload against identical traces.
  Rng rng(config.seed);
  (void)rng.split();  // legacy fleet stream slot (fleet is counter-based)
  Rng trace_rng = rng.split();

  FleetState fleet =
      make_fleet_state(config.num_devices, config.fleet, config.seed);

  const std::size_t pool_size =
      config.trace_pool > 0 ? config.trace_pool : config.num_devices;
  auto pool = generate_trace_set(config.trace_preset, pool_size,
                                 config.trace_samples, trace_rng);

  std::vector<std::uint32_t> assignment(config.num_devices);
  if (config.trace_pool == 0) {
    for (std::size_t i = 0; i < config.num_devices; ++i) {
      assignment[i] = static_cast<std::uint32_t>(i);
    }
  } else {
    // Pure per-device pick: a salted SplitMix64 of (seed, device), so the
    // assignment is independent of fill order (and of the profile stream,
    // which hashes the same pair without the salt).
    constexpr std::uint64_t kTraceAssignSalt = 0x7f4a7c159e3779b9ULL;
    for (std::size_t i = 0; i < config.num_devices; ++i) {
      SplitMix64 sm((config.seed ^ kTraceAssignSalt) ^
                    (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL));
      assignment[i] = static_cast<std::uint32_t>(sm.next() % pool.size());
    }
  }
  return FlSimulator(std::move(fleet),
                     TraceTable(std::move(pool), std::move(assignment)),
                     config.cost);
}

}  // namespace fedra
