// SimulatorBase — the shared surface of the synchronous and asynchronous
// FL simulators, plus the one round engine both run through.
//
// Controllers, selectors, and the evaluation harness program against this
// base (or against the SteppableSimulator concept for code that copies
// simulators by value), so a policy written once runs unchanged against
// FlSimulator and AsyncFlSimulator:
//
//   now()/iteration()/reset()  — simulation clock and round counter;
//   step(freqs, StepOptions)   — one round: participation mask, round
//                                deadline, fault injection, dry runs all
//                                ride in the options bag;
//   preview(freqs, StepOptions)— the same round computed WITHOUT touching
//                                simulator or fault-model state;
//   fleet()/trace_table()      — the fleet-facing state surface: SoA
//                                device columns and shared trace storage.
//
// Device state is stored as a structure-of-arrays FleetState and traces
// as a shared-pool TraceTable, so a 10^6-device fleet costs O(columns +
// trace pool), not a million structs and trace copies. The protected
// compute_round() prices rounds in fixed device blocks of kPricingBlock:
// within a block the compute-side math runs through the SIMD-dispatched
// fleet kernels and the upload solves in lockstep batches, faults and
// deadlines take the scalar per-device path, and accumulation is
// sequential in device order within the block with block partials combined
// in block order. Block boundaries depend only on fleet size, so results
// are bit-identical across thread-pool sizes — and, for fleets up to one
// block, bit-identical to the legacy sequential per-device loop.
#pragma once

#include <concepts>
#include <cstddef>
#include <vector>

#include "fault/fault_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/fleet_state.hpp"
#include "sim/step_options.hpp"
#include "trace/bandwidth_trace.hpp"
#include "trace/trace_table.hpp"

namespace fedra {

class SimulatorBase {
 public:
  virtual ~SimulatorBase() = default;

  std::size_t num_devices() const { return fleet_.size(); }

  /// The fleet-facing device surface: indexed getters plus raw column
  /// spans over the SoA storage of record.
  FleetView fleet() const { return FleetView(fleet_); }
  const FleetState& fleet_state() const { return fleet_; }

  /// Shared trace storage (pool + per-device assignment).
  const TraceTable& trace_table() const { return traces_; }
  /// Device i's upload trace.
  const BandwidthTrace& trace(std::size_t i) const { return traces_[i]; }

  const CostParams& params() const { return params_; }

  /// Current wall-clock time t^k (start of the next round).
  double now() const { return now_; }
  /// Rounds completed so far.
  std::size_t iteration() const { return iteration_; }

  /// Rewinds the simulation clock (e.g. to a random episode start per
  /// Algorithm 1 line 6) and resets the round counter.
  virtual void reset(double start_time);

  /// Restores an exact (clock, round counter) pair — the checkpoint/resume
  /// hook (fedra::ckpt). Unlike reset(), the round counter is NOT zeroed,
  /// so fault draws keyed on the iteration index continue their sequence.
  void restore_clock(double now, std::size_t iteration) {
    now_ = now;
    iteration_ = iteration;
  }

  /// Runs one round with the given per-device CPU-cycle frequencies (Hz)
  /// under `options`. Frequencies are clamped to (0, delta_i^max]: values
  /// above the cap saturate, non-positive values are lifted to a small
  /// positive floor (a device cannot opt out of training). With
  /// options.dry_run_at set, behaves exactly like preview().
  virtual IterationResult step(const std::vector<double>& freqs_hz,
                               const StepOptions& options) = 0;

  /// Computes the round starting at options.dry_run_at (default: now())
  /// WITHOUT advancing the clock, the round counter, or the fault model's
  /// crash chain (the fault model is peeked, not advanced).
  virtual IterationResult preview(const std::vector<double>& freqs_hz,
                                  StepOptions options) const = 0;

  /// Fraction of delta_i^max that non-positive actions are lifted to.
  static constexpr double kMinFreqFraction = 0.01;

  /// Devices per pricing block — the fixed unit of SIMD kernel calls,
  /// batched trace solves, and thread-pool sharding. Boundaries are a
  /// function of fleet size only (never pool size), and accumulation is
  /// sequential within a block and across block partials in block order,
  /// so every pool size produces identical bits.
  static constexpr std::size_t kPricingBlock = 4096;
  /// kAuto outcome layout: rows up to this many devices, columns beyond.
  static constexpr std::size_t kColumnarThreshold = 4096;

 protected:
  SimulatorBase(std::vector<DeviceProfile> devices,
                std::vector<BandwidthTrace> traces, CostParams params,
                double start_time);

  SimulatorBase(FleetState fleet, TraceTable traces, CostParams params,
                double start_time);

  /// The shared round engine. `faults` is the resolved per-device fault
  /// assignment (nullptr = fault-free). `barrier_idle` selects the
  /// synchronous barrier semantics (idle_time = makespan - T_i) vs the
  /// asynchronous no-barrier semantics (idle_time = 0).
  IterationResult compute_round(const std::vector<double>& freqs_hz,
                                const StepOptions& options,
                                const fault::RoundFaults* faults,
                                double start_time, bool barrier_idle) const;

  /// Resolves options.faults / options.fault_model into a concrete round
  /// assignment. `advance` evolves the crash chain (real steps only).
  /// Returns false when the round is fault-free (storage untouched).
  bool resolve_faults(const StepOptions& options, bool advance,
                      fault::RoundFaults* storage) const;

  double now_ = 0.0;
  std::size_t iteration_ = 0;

 private:
  struct BlockTotals;

  /// Prices devices [begin, end) of one block (SIMD compute kernel,
  /// batched upload solves, scalar fault/deadline paths) and accumulates
  /// the block's partial totals sequentially in device order.
  void price_block(std::size_t begin, std::size_t end,
                   const std::vector<double>& freqs_hz,
                   const std::vector<bool>* participating,
                   const fault::RoundFaults* faults, double start_time,
                   double deadline, IterationResult& result,
                   BlockTotals& totals) const;

  /// Per-device timeline under a fault assignment (slow path).
  void faulty_device_round(const DeviceProfile& dev,
                           const BandwidthTrace& trace,
                           const fault::DeviceFault& f, double start_time,
                           double deadline, DeviceOutcome& out) const;

  FleetState fleet_;
  TraceTable traces_;
  CostParams params_;
};

/// Code that needs to copy simulators by value (the evaluation harness
/// replays identical conditions per controller) constrains on this
/// instead of taking SimulatorBase&.
template <typename S>
concept SteppableSimulator =
    std::derived_from<S, SimulatorBase> && std::copyable<S>;

}  // namespace fedra
