// SimulatorBase — the shared surface of the synchronous and asynchronous
// FL simulators, plus the one round engine both run through.
//
// Controllers, selectors, and the evaluation harness program against this
// base (or against the SteppableSimulator concept for code that copies
// simulators by value), so a policy written once runs unchanged against
// FlSimulator and AsyncFlSimulator:
//
//   now()/iteration()/reset()  — simulation clock and round counter;
//   step(freqs, StepOptions)   — one round: participation mask, round
//                                deadline, fault injection, dry runs all
//                                ride in the options bag;
//   preview(freqs, StepOptions)— the same round computed WITHOUT touching
//                                simulator or fault-model state.
//
// The protected compute_round() implements the full per-device timeline:
// compute (optionally straggler-degraded), upload attempts with
// exponential backoff against the (optionally blacked-out) trace, and
// cutoffs for mid-round dropouts and the server deadline. Failed devices
// are charged the energy they actually spent; the round closes when every
// scheduled device has delivered or definitively failed.
#pragma once

#include <concepts>
#include <cstddef>
#include <vector>

#include "fault/fault_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/step_options.hpp"
#include "trace/bandwidth_trace.hpp"

namespace fedra {

class SimulatorBase {
 public:
  virtual ~SimulatorBase() = default;

  std::size_t num_devices() const { return devices_.size(); }
  const std::vector<DeviceProfile>& devices() const { return devices_; }
  const std::vector<BandwidthTrace>& traces() const { return traces_; }
  const CostParams& params() const { return params_; }

  /// Current wall-clock time t^k (start of the next round).
  double now() const { return now_; }
  /// Rounds completed so far.
  std::size_t iteration() const { return iteration_; }

  /// Rewinds the simulation clock (e.g. to a random episode start per
  /// Algorithm 1 line 6) and resets the round counter.
  virtual void reset(double start_time);

  /// Restores an exact (clock, round counter) pair — the checkpoint/resume
  /// hook (fedra::ckpt). Unlike reset(), the round counter is NOT zeroed,
  /// so fault draws keyed on the iteration index continue their sequence.
  void restore_clock(double now, std::size_t iteration) {
    now_ = now;
    iteration_ = iteration;
  }

  /// Runs one round with the given per-device CPU-cycle frequencies (Hz)
  /// under `options`. Frequencies are clamped to (0, delta_i^max]: values
  /// above the cap saturate, non-positive values are lifted to a small
  /// positive floor (a device cannot opt out of training). With
  /// options.dry_run_at set, behaves exactly like preview().
  virtual IterationResult step(const std::vector<double>& freqs_hz,
                               const StepOptions& options) = 0;

  /// Computes the round starting at options.dry_run_at (default: now())
  /// WITHOUT advancing the clock, the round counter, or the fault model's
  /// crash chain (the fault model is peeked, not advanced).
  virtual IterationResult preview(const std::vector<double>& freqs_hz,
                                  StepOptions options) const = 0;

  /// Fraction of delta_i^max that non-positive actions are lifted to.
  static constexpr double kMinFreqFraction = 0.01;

 protected:
  SimulatorBase(std::vector<DeviceProfile> devices,
                std::vector<BandwidthTrace> traces, CostParams params,
                double start_time);

  /// The shared round engine. `faults` is the resolved per-device fault
  /// assignment (nullptr = fault-free). `barrier_idle` selects the
  /// synchronous barrier semantics (idle_time = makespan - T_i) vs the
  /// asynchronous no-barrier semantics (idle_time = 0).
  IterationResult compute_round(const std::vector<double>& freqs_hz,
                                const StepOptions& options,
                                const fault::RoundFaults* faults,
                                double start_time, bool barrier_idle) const;

  /// Resolves options.faults / options.fault_model into a concrete round
  /// assignment. `advance` evolves the crash chain (real steps only).
  /// Returns false when the round is fault-free (storage untouched).
  bool resolve_faults(const StepOptions& options, bool advance,
                      fault::RoundFaults* storage) const;

  double now_ = 0.0;
  std::size_t iteration_ = 0;

 private:
  /// Per-device timeline under a fault assignment (slow path).
  void faulty_device_round(std::size_t device, const fault::DeviceFault& f,
                           double start_time, double deadline,
                           DeviceOutcome& out) const;

  std::vector<DeviceProfile> devices_;
  std::vector<BandwidthTrace> traces_;
  CostParams params_;
};

/// Code that needs to copy simulators by value (the evaluation harness
/// replays identical conditions per controller) constrains on this
/// instead of taking SimulatorBase&.
template <typename S>
concept SteppableSimulator =
    std::derived_from<S, SimulatorBase> && std::copyable<S>;

}  // namespace fedra
