// Synchronized federated-learning iteration engine (the paper's "federated
// learning system" box in Fig. 5, minus the actual model training — that
// lives in fedra::fl and can be attached via examples).
//
// Each step() takes the controller's frequency vector, plays one iteration
// against the bandwidth traces, and returns every quantity of the system
// model: per-device compute/upload/idle times, energies, the iteration
// makespan T^k (Eq. 5), the cost (Eq. 9) and the reward (Eq. 13). Upload
// completion is solved exactly from the trace integral (Eq. 3): device i's
// upload starts at t^k + t_cmp and finishes when xi bytes have flowed.
//
// Everything beyond the frequency vector rides in StepOptions: the
// participation mask (client selection), the round deadline tau (devices
// still running at t^k + tau are timed out and excluded from the barrier),
// fault injection, dry runs, outcome layout and the pricing thread pool.
// (The pre-StepOptions step(freqs) / step(freqs, participating) /
// preview(freqs, start_time) wrappers completed their deprecation cycle
// and are gone.)
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/simulator_base.hpp"
#include "sim/step_options.hpp"
#include "trace/bandwidth_trace.hpp"

namespace fedra {

class FlSimulator : public SimulatorBase {
 public:
  /// One trace per device; devices.size() == traces.size().
  FlSimulator(std::vector<DeviceProfile> devices,
              std::vector<BandwidthTrace> traces, CostParams params,
              double start_time = 0.0);

  /// Fleet-scale construction: SoA device columns plus a shared-pool trace
  /// table (no per-device trace copies).
  FlSimulator(FleetState fleet, TraceTable traces, CostParams params,
              double start_time = 0.0);

  /// Runs one synchronized iteration. The round closes when every
  /// scheduled device has delivered its update or definitively failed
  /// (crash / dropout / deadline / retry exhaustion); the makespan is the
  /// latest of those resolution times.
  IterationResult step(const std::vector<double>& freqs_hz,
                       const StepOptions& options) override;

  /// Predicts a round WITHOUT advancing the clock, the iteration counter,
  /// or the fault model's crash chain. Starts at options.dry_run_at if
  /// set, else at now().
  IterationResult preview(const std::vector<double>& freqs_hz,
                          StepOptions options) const override;
};

}  // namespace fedra
