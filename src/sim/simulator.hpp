// Synchronized federated-learning iteration engine (the paper's "federated
// learning system" box in Fig. 5, minus the actual model training — that
// lives in fedra::fl and can be attached via examples).
//
// Each step() takes the controller's frequency vector, plays one iteration
// against the bandwidth traces, and returns every quantity of the system
// model: per-device compute/upload/idle times, energies, the iteration
// makespan T^k (Eq. 5), the cost (Eq. 9) and the reward (Eq. 13). Upload
// completion is solved exactly from the trace integral (Eq. 3): device i's
// upload starts at t^k + t_cmp and finishes when xi bytes have flowed.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "trace/bandwidth_trace.hpp"

namespace fedra {

class FlSimulator {
 public:
  /// One trace per device; devices.size() == traces.size().
  FlSimulator(std::vector<DeviceProfile> devices,
              std::vector<BandwidthTrace> traces, CostParams params,
              double start_time = 0.0);

  std::size_t num_devices() const { return devices_.size(); }
  const std::vector<DeviceProfile>& devices() const { return devices_; }
  const std::vector<BandwidthTrace>& traces() const { return traces_; }
  const CostParams& params() const { return params_; }

  /// Current wall-clock time t^k (start of the next iteration).
  double now() const { return now_; }
  /// Iterations completed so far.
  std::size_t iteration() const { return iteration_; }

  /// Rewinds the simulation clock (e.g. to a random episode start per
  /// Algorithm 1 line 6) and resets the iteration counter.
  void reset(double start_time);

  /// Runs one synchronized iteration with the given per-device CPU-cycle
  /// frequencies (Hz). Frequencies are clamped to (0, delta_i^max]: values
  /// above the cap saturate, non-positive values are lifted to a small
  /// positive floor (a device cannot opt out of training).
  IterationResult step(const std::vector<double>& freqs_hz);

  /// Partial-participation variant (client selection, Nishio & Yonetani):
  /// devices with participating[i] == false sit the round out — they
  /// contribute no time, no energy, and do not gate the barrier. At least
  /// one device must participate.
  IterationResult step(const std::vector<double>& freqs_hz,
                       const std::vector<bool>& participating);

  /// Predicts the outcome of an iteration starting at `start_time` WITHOUT
  /// advancing the simulator (used by the Oracle baseline and by tests).
  IterationResult preview(const std::vector<double>& freqs_hz,
                          double start_time) const;

  /// Fraction of delta_i^max that non-positive actions are lifted to.
  static constexpr double kMinFreqFraction = 0.01;

 private:
  IterationResult run_iteration(const std::vector<double>& freqs_hz,
                                const std::vector<bool>* participating,
                                double start_time) const;

  std::vector<DeviceProfile> devices_;
  std::vector<BandwidthTrace> traces_;
  CostParams params_;
  double now_ = 0.0;
  std::size_t iteration_ = 0;
};

}  // namespace fedra
