// Synchronized federated-learning iteration engine (the paper's "federated
// learning system" box in Fig. 5, minus the actual model training — that
// lives in fedra::fl and can be attached via examples).
//
// Each step() takes the controller's frequency vector, plays one iteration
// against the bandwidth traces, and returns every quantity of the system
// model: per-device compute/upload/idle times, energies, the iteration
// makespan T^k (Eq. 5), the cost (Eq. 9) and the reward (Eq. 13). Upload
// completion is solved exactly from the trace integral (Eq. 3): device i's
// upload starts at t^k + t_cmp and finishes when xi bytes have flowed.
//
// Everything beyond the frequency vector rides in StepOptions: the
// participation mask (client selection), the round deadline tau (devices
// still running at t^k + tau are timed out and excluded from the barrier),
// fault injection, and dry runs. The old step(freqs),
// step(freqs, participating) and preview(freqs, start_time) overloads
// survive as thin deprecated wrappers.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/simulator_base.hpp"
#include "sim/step_options.hpp"
#include "trace/bandwidth_trace.hpp"

namespace fedra {

class FlSimulator : public SimulatorBase {
 public:
  /// One trace per device; devices.size() == traces.size().
  FlSimulator(std::vector<DeviceProfile> devices,
              std::vector<BandwidthTrace> traces, CostParams params,
              double start_time = 0.0);

  /// Runs one synchronized iteration. The round closes when every
  /// scheduled device has delivered its update or definitively failed
  /// (crash / dropout / deadline / retry exhaustion); the makespan is the
  /// latest of those resolution times.
  IterationResult step(const std::vector<double>& freqs_hz,
                       const StepOptions& options) override;

  /// Predicts a round WITHOUT advancing the clock, the iteration counter,
  /// or the fault model's crash chain. Starts at options.dry_run_at if
  /// set, else at now().
  IterationResult preview(const std::vector<double>& freqs_hz,
                          StepOptions options) const override;

  // --- Deprecated pre-StepOptions surface (thin wrappers) ---------------

  [[deprecated("use step(freqs, StepOptions{})")]]
  IterationResult step(const std::vector<double>& freqs_hz) {
    return step(freqs_hz, StepOptions{});
  }

  /// Template so that a braced `{}` second argument cannot deduce to a
  /// participation mask: `step(freqs, {})` resolves to the StepOptions
  /// overload unambiguously.
  template <typename Mask,
            std::enable_if_t<std::is_same_v<Mask, std::vector<bool>>, int> = 0>
  [[deprecated("use step(freqs, StepOptions::with_participants(mask))")]]
  IterationResult step(const std::vector<double>& freqs_hz,
                       const Mask& participating) {
    return step(freqs_hz, StepOptions::with_participants(participating));
  }

  [[deprecated("use preview(freqs, StepOptions::dry_run(start_time))")]]
  IterationResult preview(const std::vector<double>& freqs_hz,
                          double start_time) const {
    return preview(freqs_hz, StepOptions::dry_run(start_time));
  }
};

}  // namespace fedra
