#include "sim/cohort.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fedra {

namespace {

/// Rank key of device `id` in `round` — one SplitMix64 step over the
/// order-free (seed, round, id) combine also used by the fault model.
std::uint64_t cohort_key(std::uint64_t seed, std::size_t round,
                         std::uint64_t id) {
  const std::uint64_t a = seed ^ (static_cast<std::uint64_t>(round) *
                                  0x9e3779b97f4a7c15ULL);
  SplitMix64 sm(a ^ (id + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  return sm.next();
}

}  // namespace

std::vector<bool> Cohort::mask(std::size_t fleet_size) const {
  std::vector<bool> m(fleet_size, false);
  for (const std::size_t i : indices) {
    FEDRA_EXPECTS(i < fleet_size);
    m[i] = true;
  }
  return m;
}

Cohort sample_cohort(std::size_t fleet_size, std::size_t k,
                     std::uint64_t seed, std::size_t round) {
  FEDRA_EXPECTS(fleet_size > 0 && k > 0);
  Cohort cohort;
  if (k >= fleet_size) {
    cohort.indices.resize(fleet_size);
    for (std::size_t i = 0; i < fleet_size; ++i) cohort.indices[i] = i;
    return cohort;
  }

  // Rank all devices by (key, id) and keep the k smallest. nth_element
  // keeps this O(n) instead of a full sort of the fleet.
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    ranked[i] = {cohort_key(seed, round, i), i};
  }
  std::nth_element(ranked.begin(), ranked.begin() + (k - 1), ranked.end());
  cohort.indices.resize(k);
  for (std::size_t i = 0; i < k; ++i) cohort.indices[i] = ranked[i].second;
  std::sort(cohort.indices.begin(), cohort.indices.end());
  return cohort;
}

}  // namespace fedra
