#include "sim/cost_model.hpp"

namespace fedra {

double iteration_cost(double iteration_time, double total_energy,
                      const CostParams& params) {
  FEDRA_EXPECTS(iteration_time >= 0.0 && total_energy >= 0.0);
  FEDRA_EXPECTS(params.lambda >= 0.0);
  return iteration_time + params.lambda * total_energy;
}

double iteration_reward(double iteration_time, double total_energy,
                        const CostParams& params) {
  return -iteration_cost(iteration_time, total_energy, params);
}

std::vector<std::size_t> IterationResult::completed_indices() const {
  std::vector<std::size_t> idx;
  idx.reserve(num_completed);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].participated && devices[i].completed) idx.push_back(i);
  }
  return idx;
}

double total_cost(const std::vector<IterationResult>& results) {
  double acc = 0.0;
  for (const auto& r : results) acc += r.cost;
  return acc;
}

}  // namespace fedra
