#include "sim/cost_model.hpp"

namespace fedra {

double iteration_cost(double iteration_time, double total_energy,
                      const CostParams& params) {
  FEDRA_EXPECTS(iteration_time >= 0.0 && total_energy >= 0.0);
  FEDRA_EXPECTS(params.lambda >= 0.0);
  return iteration_time + params.lambda * total_energy;
}

double iteration_reward(double iteration_time, double total_energy,
                        const CostParams& params) {
  return -iteration_cost(iteration_time, total_energy, params);
}

void DeviceOutcomeColumns::resize(std::size_t n) {
  // New slots match a default-constructed DeviceOutcome (participated and
  // completed true, everything else zero).
  participated.resize(n, 1);
  completed.resize(n, 1);
  failure.resize(n, 0);
  retries.resize(n, 0);
  freq_hz.resize(n, 0.0);
  compute_time.resize(n, 0.0);
  comm_time.resize(n, 0.0);
  total_time.resize(n, 0.0);
  idle_time.resize(n, 0.0);
  compute_energy.resize(n, 0.0);
  comm_energy.resize(n, 0.0);
  energy.resize(n, 0.0);
  avg_bandwidth.resize(n, 0.0);
}

void DeviceOutcomeColumns::clear() {
  participated.clear();
  completed.clear();
  failure.clear();
  retries.clear();
  freq_hz.clear();
  compute_time.clear();
  comm_time.clear();
  total_time.clear();
  idle_time.clear();
  compute_energy.clear();
  comm_energy.clear();
  energy.clear();
  avg_bandwidth.clear();
}

DeviceOutcome DeviceOutcomeColumns::row(std::size_t i) const {
  FEDRA_EXPECTS(i < size());
  DeviceOutcome out;
  out.participated = participated[i] != 0;
  out.completed = completed[i] != 0;
  out.failure = static_cast<DeviceFailure>(failure[i]);
  out.retries = retries[i];
  out.freq_hz = freq_hz[i];
  out.compute_time = compute_time[i];
  out.comm_time = comm_time[i];
  out.total_time = total_time[i];
  out.idle_time = idle_time[i];
  out.compute_energy = compute_energy[i];
  out.comm_energy = comm_energy[i];
  out.energy = energy[i];
  out.avg_bandwidth = avg_bandwidth[i];
  return out;
}

void DeviceOutcomeColumns::set_row(std::size_t i, const DeviceOutcome& out) {
  FEDRA_EXPECTS(i < size());
  participated[i] = out.participated ? 1 : 0;
  completed[i] = out.completed ? 1 : 0;
  failure[i] = static_cast<std::uint8_t>(out.failure);
  retries[i] = static_cast<std::uint32_t>(out.retries);
  freq_hz[i] = out.freq_hz;
  compute_time[i] = out.compute_time;
  comm_time[i] = out.comm_time;
  total_time[i] = out.total_time;
  idle_time[i] = out.idle_time;
  compute_energy[i] = out.compute_energy;
  comm_energy[i] = out.comm_energy;
  energy[i] = out.energy;
  avg_bandwidth[i] = out.avg_bandwidth;
}

DeviceOutcome IterationResult::outcome(std::size_t i) const {
  FEDRA_EXPECTS(has_device_outcomes());
  if (layout == OutcomeLayout::kColumns) return columns.row(i);
  FEDRA_EXPECTS(i < devices.size());
  return devices[i];
}

std::vector<std::size_t> IterationResult::completed_indices() const {
  FEDRA_EXPECTS(has_device_outcomes());
  std::vector<std::size_t> idx;
  idx.reserve(num_completed);
  if (layout == OutcomeLayout::kColumns) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns.participated[i] != 0 && columns.completed[i] != 0) {
        idx.push_back(i);
      }
    }
    return idx;
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].participated && devices[i].completed) idx.push_back(i);
  }
  return idx;
}

double total_cost(const std::vector<IterationResult>& results) {
  double acc = 0.0;
  for (const auto& r : results) acc += r.cost;
  return acc;
}

}  // namespace fedra
