// Vectorized fleet pricing kernels — Eqs. (1)/(6) and the deadline-solver
// per-device math evaluated across structure-of-arrays device columns.
//
// Same discipline as the PR 4 GEMM kernels (src/tensor/ops.cpp): each
// entry point dispatches at runtime to an AVX-512F / AVX2 / scalar
// implementation compiled via per-function target attributes, and every
// tier is bit-identical to the scalar reference (`*_reference`), which is
// the oracle the property tests and the fleet bench compare against. The
// kernels are pure element-wise maps (no cross-lane reductions), so SIMD
// width never touches summation order; the two places a multiply feeds an
// add use the separate-mul-add + asm-barrier idiom so no tier contracts
// into FMA (a fused a*b+c rounds once instead of twice).
//
// All functions take raw column pointers (length n) rather than spans so
// tests can poison the padding beyond n and assert the kernels never read
// or write it.
#pragma once

#include <cstddef>

namespace fedra::fleet {

/// Compute-side pricing for n devices: clamps the requested frequency to
/// [min_freq_fraction * max, max] (DeviceProfile semantics), then
/// t_cmp = tau*c*D / f (Eq. 1) and E_cmp = tau*alpha*c*D*f^2 (Eq. 6).
/// Output columns freq_hz / compute_time / compute_energy (length n).
void price_compute(std::size_t n, double tau, double min_freq_fraction,
                   const double* cycles_per_bit, const double* dataset_bits,
                   const double* capacitance, const double* max_freq_hz,
                   const double* freqs_in, double* freq_hz,
                   double* compute_time, double* compute_energy);
/// Scalar oracle for price_compute (bitwise target of every tier).
void price_compute_reference(std::size_t n, double tau,
                             double min_freq_fraction,
                             const double* cycles_per_bit,
                             const double* dataset_bits,
                             const double* capacitance,
                             const double* max_freq_hz,
                             const double* freqs_in, double* freq_hz,
                             double* compute_time, double* compute_energy);

/// Minimal feasible frequency per device to finish computing by `deadline`
/// given estimated comm times: f = tau*c*D / (deadline - est), devices
/// that cannot make it run at max, all clamped to [floor, max]. The
/// vector path of sched's freqs_for_deadline.
void deadline_freqs(std::size_t n, double tau, double min_freq_fraction,
                    double deadline, const double* cycles_per_bit,
                    const double* dataset_bits, const double* max_freq_hz,
                    const double* est_comm_times, double* freqs_out);
void deadline_freqs_reference(std::size_t n, double tau,
                              double min_freq_fraction, double deadline,
                              const double* cycles_per_bit,
                              const double* dataset_bits,
                              const double* max_freq_hz,
                              const double* est_comm_times,
                              double* freqs_out);

/// Predicted per-device completion time (t_cmp + est) and round energy
/// (E_cmp + e*est) under estimated comm times — the per-device terms of
/// sched's predicted_cost, whose reduction stays a sequential scalar sum.
void predicted_terms(std::size_t n, double tau, const double* cycles_per_bit,
                     const double* dataset_bits, const double* capacitance,
                     const double* tx_power_w, const double* est_comm_times,
                     const double* freqs_hz, double* time_out,
                     double* energy_out);
void predicted_terms_reference(std::size_t n, double tau,
                               const double* cycles_per_bit,
                               const double* dataset_bits,
                               const double* capacitance,
                               const double* tx_power_w,
                               const double* est_comm_times,
                               const double* freqs_hz, double* time_out,
                               double* energy_out);

/// Widest tier this CPU dispatches to: "avx512f", "avx2", or "scalar"
/// (bench reporting; tier choice never affects bits).
const char* simd_tier();

}  // namespace fedra::fleet
