#include "sim/fleet_pricing.hpp"

#include <algorithm>

#if defined(__x86_64__) && defined(__GNUC__)
#define FEDRA_FLEET_X86_SIMD 1
#include <immintrin.h>
#else
#define FEDRA_FLEET_X86_SIMD 0
#endif

namespace fedra::fleet {

namespace {

/// 0 = scalar, 1 = AVX2, 2 = AVX-512F. Cached once per process.
int detect_tier() {
#if FEDRA_FLEET_X86_SIMD
  if (__builtin_cpu_supports("avx512f")) return 2;
  if (__builtin_cpu_supports("avx2")) return 1;
#endif
  return 0;
}

int tier() {
  static const int t = detect_tier();
  return t;
}

}  // namespace

const char* simd_tier() {
  switch (tier()) {
    case 2: return "avx512f";
    case 1: return "avx2";
    default: return "scalar";
  }
}

// ---- Scalar references -------------------------------------------------
//
// Operation-for-operation the DeviceProfile member math: the clamp is
// std::clamp(f, frac*max, max), t_cmp is ((tau*c)*D)/f, E_cmp is
// ((((tau*alpha)*c)*D)*f)*f — matching compute_time()/compute_energy()
// left-to-right evaluation so the columnar path is bit-exact against the
// per-device AoS loop. These also serve as the tail handlers of the SIMD
// dispatchers; they are compiled for the baseline ISA, so no contraction.

void price_compute_reference(std::size_t n, double tau,
                             double min_freq_fraction,
                             const double* cycles_per_bit,
                             const double* dataset_bits,
                             const double* capacitance,
                             const double* max_freq_hz,
                             const double* freqs_in, double* freq_hz,
                             double* compute_time, double* compute_energy) {
  for (std::size_t i = 0; i < n; ++i) {
    const double floor_hz = min_freq_fraction * max_freq_hz[i];
    const double f = std::clamp(freqs_in[i], floor_hz, max_freq_hz[i]);
    freq_hz[i] = f;
    compute_time[i] = tau * cycles_per_bit[i] * dataset_bits[i] / f;
    compute_energy[i] =
        tau * capacitance[i] * cycles_per_bit[i] * dataset_bits[i] * f * f;
  }
}

void deadline_freqs_reference(std::size_t n, double tau,
                              double min_freq_fraction, double deadline,
                              const double* cycles_per_bit,
                              const double* dataset_bits,
                              const double* max_freq_hz,
                              const double* est_comm_times,
                              double* freqs_out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double floor_hz = min_freq_fraction * max_freq_hz[i];
    const double budget = deadline - est_comm_times[i];
    double f;
    if (budget <= 0.0) {
      f = max_freq_hz[i];  // cannot make the deadline; run flat out
    } else {
      f = tau * cycles_per_bit[i] * dataset_bits[i] / budget;
    }
    freqs_out[i] = std::clamp(f, floor_hz, max_freq_hz[i]);
  }
}

void predicted_terms_reference(std::size_t n, double tau,
                               const double* cycles_per_bit,
                               const double* dataset_bits,
                               const double* capacitance,
                               const double* tx_power_w,
                               const double* est_comm_times,
                               const double* freqs_hz, double* time_out,
                               double* energy_out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double tcmp = tau * cycles_per_bit[i] * dataset_bits[i] / freqs_hz[i];
    time_out[i] = tcmp + est_comm_times[i];
    const double ce = tau * capacitance[i] * cycles_per_bit[i] *
                      dataset_bits[i] * freqs_hz[i] * freqs_hz[i];
    energy_out[i] = ce + tx_power_w[i] * est_comm_times[i];
  }
}

// ---- SIMD tiers --------------------------------------------------------

#if FEDRA_FLEET_X86_SIMD

// GCC's _mm512_min_pd/_mm512_max_pd pass _mm512_undefined_pd() as the
// masked-off source, tripping -Wmaybe-uninitialized when inlined here even
// though every lane is selected.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Each kernel processes only whole vectors (n a multiple of the width);
// the dispatcher routes the remainder through the baseline-compiled scalar
// reference so no tail arithmetic runs under a wider target attribute
// (where the compiler could contract scalar mul+add into FMA).
//
// min/max replace std::clamp lane-wise: identical for finite inputs, and
// the engine's frequency actions are finite by contract.

__attribute__((target("avx2"))) void price_compute_avx2(
    std::size_t n, double tau, double min_freq_fraction,
    const double* cycles_per_bit, const double* dataset_bits,
    const double* capacitance, const double* max_freq_hz,
    const double* freqs_in, double* freq_hz, double* compute_time,
    double* compute_energy) {
  const __m256d vtau = _mm256_set1_pd(tau);
  const __m256d vfrac = _mm256_set1_pd(min_freq_fraction);
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256d c = _mm256_loadu_pd(cycles_per_bit + i);
    const __m256d d = _mm256_loadu_pd(dataset_bits + i);
    const __m256d cap = _mm256_loadu_pd(capacitance + i);
    const __m256d fmax = _mm256_loadu_pd(max_freq_hz + i);
    const __m256d fin = _mm256_loadu_pd(freqs_in + i);
    const __m256d floor_hz = _mm256_mul_pd(vfrac, fmax);
    const __m256d f = _mm256_min_pd(_mm256_max_pd(fin, floor_hz), fmax);
    const __m256d cd = _mm256_mul_pd(_mm256_mul_pd(vtau, c), d);
    const __m256d e = _mm256_mul_pd(
        _mm256_mul_pd(
            _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(vtau, cap), c), d), f),
        f);
    _mm256_storeu_pd(freq_hz + i, f);
    _mm256_storeu_pd(compute_time + i, _mm256_div_pd(cd, f));
    _mm256_storeu_pd(compute_energy + i, e);
  }
}

__attribute__((target("avx512f"))) void price_compute_avx512(
    std::size_t n, double tau, double min_freq_fraction,
    const double* cycles_per_bit, const double* dataset_bits,
    const double* capacitance, const double* max_freq_hz,
    const double* freqs_in, double* freq_hz, double* compute_time,
    double* compute_energy) {
  const __m512d vtau = _mm512_set1_pd(tau);
  const __m512d vfrac = _mm512_set1_pd(min_freq_fraction);
  for (std::size_t i = 0; i < n; i += 8) {
    const __m512d c = _mm512_loadu_pd(cycles_per_bit + i);
    const __m512d d = _mm512_loadu_pd(dataset_bits + i);
    const __m512d cap = _mm512_loadu_pd(capacitance + i);
    const __m512d fmax = _mm512_loadu_pd(max_freq_hz + i);
    const __m512d fin = _mm512_loadu_pd(freqs_in + i);
    const __m512d floor_hz = _mm512_mul_pd(vfrac, fmax);
    const __m512d f = _mm512_min_pd(_mm512_max_pd(fin, floor_hz), fmax);
    const __m512d cd = _mm512_mul_pd(_mm512_mul_pd(vtau, c), d);
    const __m512d e = _mm512_mul_pd(
        _mm512_mul_pd(
            _mm512_mul_pd(_mm512_mul_pd(_mm512_mul_pd(vtau, cap), c), d), f),
        f);
    _mm512_storeu_pd(freq_hz + i, f);
    _mm512_storeu_pd(compute_time + i, _mm512_div_pd(cd, f));
    _mm512_storeu_pd(compute_energy + i, e);
  }
}

__attribute__((target("avx2"))) void deadline_freqs_avx2(
    std::size_t n, double tau, double min_freq_fraction, double deadline,
    const double* cycles_per_bit, const double* dataset_bits,
    const double* max_freq_hz, const double* est_comm_times,
    double* freqs_out) {
  const __m256d vtau = _mm256_set1_pd(tau);
  const __m256d vfrac = _mm256_set1_pd(min_freq_fraction);
  const __m256d vdl = _mm256_set1_pd(deadline);
  const __m256d vzero = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256d c = _mm256_loadu_pd(cycles_per_bit + i);
    const __m256d d = _mm256_loadu_pd(dataset_bits + i);
    const __m256d fmax = _mm256_loadu_pd(max_freq_hz + i);
    const __m256d est = _mm256_loadu_pd(est_comm_times + i);
    const __m256d budget = _mm256_sub_pd(vdl, est);
    const __m256d cd = _mm256_mul_pd(_mm256_mul_pd(vtau, c), d);
    const __m256d fdiv = _mm256_div_pd(cd, budget);
    const __m256d infeasible = _mm256_cmp_pd(budget, vzero, _CMP_LE_OQ);
    const __m256d f = _mm256_blendv_pd(fdiv, fmax, infeasible);
    const __m256d floor_hz = _mm256_mul_pd(vfrac, fmax);
    _mm256_storeu_pd(freqs_out + i,
                     _mm256_min_pd(_mm256_max_pd(f, floor_hz), fmax));
  }
}

__attribute__((target("avx512f"))) void deadline_freqs_avx512(
    std::size_t n, double tau, double min_freq_fraction, double deadline,
    const double* cycles_per_bit, const double* dataset_bits,
    const double* max_freq_hz, const double* est_comm_times,
    double* freqs_out) {
  const __m512d vtau = _mm512_set1_pd(tau);
  const __m512d vfrac = _mm512_set1_pd(min_freq_fraction);
  const __m512d vdl = _mm512_set1_pd(deadline);
  const __m512d vzero = _mm512_setzero_pd();
  for (std::size_t i = 0; i < n; i += 8) {
    const __m512d c = _mm512_loadu_pd(cycles_per_bit + i);
    const __m512d d = _mm512_loadu_pd(dataset_bits + i);
    const __m512d fmax = _mm512_loadu_pd(max_freq_hz + i);
    const __m512d est = _mm512_loadu_pd(est_comm_times + i);
    const __m512d budget = _mm512_sub_pd(vdl, est);
    const __m512d cd = _mm512_mul_pd(_mm512_mul_pd(vtau, c), d);
    const __m512d fdiv = _mm512_div_pd(cd, budget);
    const __mmask8 infeasible =
        _mm512_cmp_pd_mask(budget, vzero, _CMP_LE_OQ);
    const __m512d f = _mm512_mask_blend_pd(infeasible, fdiv, fmax);
    const __m512d floor_hz = _mm512_mul_pd(vfrac, fmax);
    _mm512_storeu_pd(freqs_out + i,
                     _mm512_min_pd(_mm512_max_pd(f, floor_hz), fmax));
  }
}

__attribute__((target("avx2"))) void predicted_terms_avx2(
    std::size_t n, double tau, const double* cycles_per_bit,
    const double* dataset_bits, const double* capacitance,
    const double* tx_power_w, const double* est_comm_times,
    const double* freqs_hz, double* time_out, double* energy_out) {
  const __m256d vtau = _mm256_set1_pd(tau);
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256d c = _mm256_loadu_pd(cycles_per_bit + i);
    const __m256d d = _mm256_loadu_pd(dataset_bits + i);
    const __m256d cap = _mm256_loadu_pd(capacitance + i);
    const __m256d tx = _mm256_loadu_pd(tx_power_w + i);
    const __m256d est = _mm256_loadu_pd(est_comm_times + i);
    const __m256d f = _mm256_loadu_pd(freqs_hz + i);
    const __m256d cd = _mm256_mul_pd(_mm256_mul_pd(vtau, c), d);
    const __m256d tcmp = _mm256_div_pd(cd, f);
    _mm256_storeu_pd(time_out + i, _mm256_add_pd(tcmp, est));
    const __m256d ce = _mm256_mul_pd(
        _mm256_mul_pd(
            _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(vtau, cap), c), d), f),
        f);
    __m256d cme = _mm256_mul_pd(tx, est);
    __asm__("" : "+x"(cme));  // keep mul/add unfused
    _mm256_storeu_pd(energy_out + i, _mm256_add_pd(ce, cme));
  }
}

__attribute__((target("avx512f"))) void predicted_terms_avx512(
    std::size_t n, double tau, const double* cycles_per_bit,
    const double* dataset_bits, const double* capacitance,
    const double* tx_power_w, const double* est_comm_times,
    const double* freqs_hz, double* time_out, double* energy_out) {
  const __m512d vtau = _mm512_set1_pd(tau);
  for (std::size_t i = 0; i < n; i += 8) {
    const __m512d c = _mm512_loadu_pd(cycles_per_bit + i);
    const __m512d d = _mm512_loadu_pd(dataset_bits + i);
    const __m512d cap = _mm512_loadu_pd(capacitance + i);
    const __m512d tx = _mm512_loadu_pd(tx_power_w + i);
    const __m512d est = _mm512_loadu_pd(est_comm_times + i);
    const __m512d f = _mm512_loadu_pd(freqs_hz + i);
    const __m512d cd = _mm512_mul_pd(_mm512_mul_pd(vtau, c), d);
    const __m512d tcmp = _mm512_div_pd(cd, f);
    _mm512_storeu_pd(time_out + i, _mm512_add_pd(tcmp, est));
    const __m512d ce = _mm512_mul_pd(
        _mm512_mul_pd(
            _mm512_mul_pd(_mm512_mul_pd(_mm512_mul_pd(vtau, cap), c), d), f),
        f);
    __m512d cme = _mm512_mul_pd(tx, est);
    __asm__("" : "+v"(cme));  // keep mul/add unfused
    _mm512_storeu_pd(energy_out + i, _mm512_add_pd(ce, cme));
  }
}

#pragma GCC diagnostic pop

#endif  // FEDRA_FLEET_X86_SIMD

// ---- Dispatchers -------------------------------------------------------

void price_compute(std::size_t n, double tau, double min_freq_fraction,
                   const double* cycles_per_bit, const double* dataset_bits,
                   const double* capacitance, const double* max_freq_hz,
                   const double* freqs_in, double* freq_hz,
                   double* compute_time, double* compute_energy) {
  std::size_t head = 0;
#if FEDRA_FLEET_X86_SIMD
  if (tier() == 2) {
    head = n & ~std::size_t{7};
    price_compute_avx512(head, tau, min_freq_fraction, cycles_per_bit,
                         dataset_bits, capacitance, max_freq_hz, freqs_in,
                         freq_hz, compute_time, compute_energy);
  } else if (tier() == 1) {
    head = n & ~std::size_t{3};
    price_compute_avx2(head, tau, min_freq_fraction, cycles_per_bit,
                       dataset_bits, capacitance, max_freq_hz, freqs_in,
                       freq_hz, compute_time, compute_energy);
  }
#endif
  price_compute_reference(n - head, tau, min_freq_fraction,
                          cycles_per_bit + head, dataset_bits + head,
                          capacitance + head, max_freq_hz + head,
                          freqs_in + head, freq_hz + head,
                          compute_time + head, compute_energy + head);
}

void deadline_freqs(std::size_t n, double tau, double min_freq_fraction,
                    double deadline, const double* cycles_per_bit,
                    const double* dataset_bits, const double* max_freq_hz,
                    const double* est_comm_times, double* freqs_out) {
  std::size_t head = 0;
#if FEDRA_FLEET_X86_SIMD
  if (tier() == 2) {
    head = n & ~std::size_t{7};
    deadline_freqs_avx512(head, tau, min_freq_fraction, deadline,
                          cycles_per_bit, dataset_bits, max_freq_hz,
                          est_comm_times, freqs_out);
  } else if (tier() == 1) {
    head = n & ~std::size_t{3};
    deadline_freqs_avx2(head, tau, min_freq_fraction, deadline,
                        cycles_per_bit, dataset_bits, max_freq_hz,
                        est_comm_times, freqs_out);
  }
#endif
  deadline_freqs_reference(n - head, tau, min_freq_fraction, deadline,
                           cycles_per_bit + head, dataset_bits + head,
                           max_freq_hz + head, est_comm_times + head,
                           freqs_out + head);
}

void predicted_terms(std::size_t n, double tau, const double* cycles_per_bit,
                     const double* dataset_bits, const double* capacitance,
                     const double* tx_power_w, const double* est_comm_times,
                     const double* freqs_hz, double* time_out,
                     double* energy_out) {
  std::size_t head = 0;
#if FEDRA_FLEET_X86_SIMD
  if (tier() == 2) {
    head = n & ~std::size_t{7};
    predicted_terms_avx512(head, tau, cycles_per_bit, dataset_bits,
                           capacitance, tx_power_w, est_comm_times, freqs_hz,
                           time_out, energy_out);
  } else if (tier() == 1) {
    head = n & ~std::size_t{3};
    predicted_terms_avx2(head, tau, cycles_per_bit, dataset_bits, capacitance,
                         tx_power_w, est_comm_times, freqs_hz, time_out,
                         energy_out);
  }
#endif
  predicted_terms_reference(n - head, tau, cycles_per_bit + head,
                            dataset_bits + head, capacitance + head,
                            tx_power_w + head, est_comm_times + head,
                            freqs_hz + head, time_out + head,
                            energy_out + head);
}

}  // namespace fedra::fleet
