// Asynchronous federated learning simulator — the counterfactual to the
// paper's synchronized barrier (the paper adopts sync citing Chen et al.
// [14]; this module makes that design choice measurable).
//
// In async mode every device loops independently: pull the latest global
// model, train tau passes at its frequency, upload, repeat — no barrier,
// no idle time. The server version-stamps the global model; an update
// computed against version v and applied at version v' has staleness
// v' - v. Event-driven simulation over the same bandwidth traces and
// device profiles as the synchronous FlSimulator.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "trace/bandwidth_trace.hpp"

namespace fedra {

/// One completed async update.
struct AsyncUpdateEvent {
  double time = 0.0;          ///< server-side arrival time
  std::size_t device = 0;
  std::size_t based_on_version = 0;  ///< global version the device pulled
  std::size_t applied_version = 0;   ///< version right before applying
  std::size_t staleness = 0;         ///< applied - based_on
  double compute_time = 0.0;
  double comm_time = 0.0;
  double energy = 0.0;        ///< E for this cycle (compute + upload)
};

struct AsyncRunResult {
  std::vector<AsyncUpdateEvent> events;  ///< sorted by arrival time
  double horizon = 0.0;
  double total_energy = 0.0;
  std::vector<std::size_t> updates_per_device;

  double updates_per_second() const {
    return horizon > 0.0 ? static_cast<double>(events.size()) / horizon
                         : 0.0;
  }
  double mean_staleness() const;
};

class AsyncFlSimulator {
 public:
  AsyncFlSimulator(std::vector<DeviceProfile> devices,
                   std::vector<BandwidthTrace> traces, CostParams params);

  std::size_t num_devices() const { return devices_.size(); }
  const std::vector<DeviceProfile>& devices() const { return devices_; }
  const CostParams& params() const { return params_; }

  /// Simulates all devices looping independently at the given frequencies
  /// from t = 0 until `horizon` seconds. Updates completing after the
  /// horizon are discarded (their energy is not charged).
  AsyncRunResult run(const std::vector<double>& freqs_hz,
                     double horizon) const;

 private:
  std::vector<DeviceProfile> devices_;
  std::vector<BandwidthTrace> traces_;
  CostParams params_;
};

}  // namespace fedra
