// Asynchronous federated learning simulator — the counterfactual to the
// paper's synchronized barrier (the paper adopts sync citing Chen et al.
// [14]; this module makes that design choice measurable).
//
// In async mode every device loops independently: pull the latest global
// model, train tau passes at its frequency, upload, repeat — no barrier,
// no idle time. The server version-stamps the global model; an update
// computed against version v and applied at version v' has staleness
// v' - v. Event-driven simulation over the same bandwidth traces and
// device profiles as the synchronous FlSimulator.
//
// AsyncFlSimulator also exposes the shared SimulatorBase round surface
// (step/preview with StepOptions): one "round" is every device running a
// single train-upload cycle concurrently from now(), with no barrier —
// idle_time is zero and the clock advances by the slowest device's cycle.
// That lets the evaluation harness and every controller run unchanged
// against either simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/simulator_base.hpp"
#include "sim/step_options.hpp"
#include "trace/bandwidth_trace.hpp"

namespace fedra {

/// One completed async update.
struct AsyncUpdateEvent {
  double time = 0.0;          ///< server-side arrival time
  std::size_t device = 0;
  std::size_t based_on_version = 0;  ///< global version the device pulled
  std::size_t applied_version = 0;   ///< version right before applying
  std::size_t staleness = 0;         ///< applied - based_on
  double compute_time = 0.0;
  double comm_time = 0.0;
  double energy = 0.0;        ///< E for this cycle (compute + upload)
};

struct AsyncRunResult {
  std::vector<AsyncUpdateEvent> events;  ///< sorted by arrival time
  double horizon = 0.0;
  double total_energy = 0.0;
  std::vector<std::size_t> updates_per_device;

  double updates_per_second() const {
    return horizon > 0.0 ? static_cast<double>(events.size()) / horizon
                         : 0.0;
  }
  double mean_staleness() const;
};

class AsyncFlSimulator : public SimulatorBase {
 public:
  AsyncFlSimulator(std::vector<DeviceProfile> devices,
                   std::vector<BandwidthTrace> traces, CostParams params,
                   double start_time = 0.0);

  /// Fleet-scale construction: SoA device columns plus a shared-pool trace
  /// table (no per-device trace copies).
  AsyncFlSimulator(FleetState fleet, TraceTable traces, CostParams params,
                   double start_time = 0.0);

  /// One concurrent train-upload cycle per scheduled device, no barrier:
  /// idle_time is 0 for every device and the clock advances by the
  /// slowest resolution time (the next pull point for a lockstep policy).
  IterationResult step(const std::vector<double>& freqs_hz,
                       const StepOptions& options) override;

  /// Same cycle WITHOUT advancing clock, counter, or crash chain.
  IterationResult preview(const std::vector<double>& freqs_hz,
                          StepOptions options) const override;

  /// Simulates all devices looping independently at the given frequencies
  /// from t = 0 until `horizon` seconds. Updates completing after the
  /// horizon are discarded (their energy is not charged).
  AsyncRunResult run(const std::vector<double>& freqs_hz,
                     double horizon) const;
};

}  // namespace fedra
