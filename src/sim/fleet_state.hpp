// Structure-of-arrays device state — the storage of record for fleets.
//
// The paper's evaluation stops at 50 devices, where an array of
// DeviceProfile structs is fine. Pricing Eqs. (1)-(6) for 10^5-10^6
// devices per round wants the opposite layout: one contiguous column per
// per-device constant (cycles_per_bit, dataset_bits, capacitance,
// max_freq_hz, tx_power_w), so the cost kernels stream each column once
// and the SIMD lanes load neighbours, not strided struct fields.
//
// FleetState owns the columns; FleetView is the non-owning read surface
// handed to kernels, controllers, and the simulator API (indexed getters
// plus raw column spans). DeviceProfile survives as the single-device
// value type: view.device(i) materializes one on demand.
//
// make_fleet_state() samples a fleet with per-device COUNTER-BASED draws:
// device i's profile is a pure function of (seed, i) via SplitMix64, so a
// million-device fleet can be filled shard-parallel (fill_fleet_range on
// disjoint ranges) and still be bit-identical to the sequential fill —
// unlike the legacy make_fleet(), whose single Rng stream makes device i
// depend on every draw before it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/device.hpp"
#include "util/contracts.hpp"

namespace fedra {

class FleetState {
 public:
  FleetState() = default;

  /// Column-izes an existing AoS fleet (legacy construction path).
  explicit FleetState(const std::vector<DeviceProfile>& devices);

  std::size_t size() const { return cycles_per_bit_.size(); }
  bool empty() const { return cycles_per_bit_.empty(); }

  void reserve(std::size_t n);
  /// Appends one device (all five columns stay equal-length).
  void push_back(const DeviceProfile& d);
  /// Grows to n devices (new slots default-constructed DeviceProfile).
  void resize(std::size_t n);

  /// Materializes device i as the single-device value type.
  DeviceProfile device(std::size_t i) const {
    FEDRA_EXPECTS(i < size());
    return DeviceProfile{cycles_per_bit_[i], dataset_bits_[i],
                         capacitance_[i], max_freq_hz_[i], tx_power_w_[i]};
  }

  /// Materializes the whole fleet as AoS (the deprecated devices() shim
  /// and tests that still want rows).
  std::vector<DeviceProfile> to_profiles() const;

  // Column access (const reads for kernels, mutable for fillers).
  const std::vector<double>& cycles_per_bit() const { return cycles_per_bit_; }
  const std::vector<double>& dataset_bits() const { return dataset_bits_; }
  const std::vector<double>& capacitance() const { return capacitance_; }
  const std::vector<double>& max_freq_hz() const { return max_freq_hz_; }
  const std::vector<double>& tx_power_w() const { return tx_power_w_; }

  void set_device(std::size_t i, const DeviceProfile& d) {
    FEDRA_EXPECTS(i < size());
    cycles_per_bit_[i] = d.cycles_per_bit;
    dataset_bits_[i] = d.dataset_bits;
    capacitance_[i] = d.capacitance;
    max_freq_hz_[i] = d.max_freq_hz;
    tx_power_w_[i] = d.tx_power_w;
  }

 private:
  std::vector<double> cycles_per_bit_;
  std::vector<double> dataset_bits_;
  std::vector<double> capacitance_;
  std::vector<double> max_freq_hz_;
  std::vector<double> tx_power_w_;
};

/// Non-owning read view over a contiguous device range of a FleetState —
/// the fleet-facing accessor SimulatorBase exposes instead of a raw
/// std::vector<DeviceProfile>&. Cheap to copy (six pointers); must not
/// outlive the FleetState it views.
class FleetView {
 public:
  FleetView() = default;

  // NOLINTNEXTLINE(runtime/explicit) — a FleetState IS a whole-fleet view.
  FleetView(const FleetState& state)
      : cycles_per_bit_(state.cycles_per_bit().data()),
        dataset_bits_(state.dataset_bits().data()),
        capacitance_(state.capacitance().data()),
        max_freq_hz_(state.max_freq_hz().data()),
        tx_power_w_(state.tx_power_w().data()),
        size_(state.size()) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// View of devices [begin, end) — the cohort/shard window.
  FleetView subview(std::size_t begin, std::size_t end) const {
    FEDRA_EXPECTS(begin <= end && end <= size_);
    FleetView v = *this;
    v.cycles_per_bit_ += begin;
    v.dataset_bits_ += begin;
    v.capacitance_ += begin;
    v.max_freq_hz_ += begin;
    v.tx_power_w_ += begin;
    v.size_ = end - begin;
    return v;
  }

  // Column spans (for the vectorized kernels).
  std::span<const double> cycles_per_bit() const {
    return {cycles_per_bit_, size_};
  }
  std::span<const double> dataset_bits() const {
    return {dataset_bits_, size_};
  }
  std::span<const double> capacitance() const { return {capacitance_, size_}; }
  std::span<const double> max_freq_hz() const { return {max_freq_hz_, size_}; }
  std::span<const double> tx_power_w() const { return {tx_power_w_, size_}; }

  // Indexed getters (for per-device call sites).
  double cycles_per_bit(std::size_t i) const {
    FEDRA_EXPECTS(i < size_);
    return cycles_per_bit_[i];
  }
  double dataset_bits(std::size_t i) const {
    FEDRA_EXPECTS(i < size_);
    return dataset_bits_[i];
  }
  double capacitance(std::size_t i) const {
    FEDRA_EXPECTS(i < size_);
    return capacitance_[i];
  }
  double max_freq_hz(std::size_t i) const {
    FEDRA_EXPECTS(i < size_);
    return max_freq_hz_[i];
  }
  double tx_power_w(std::size_t i) const {
    FEDRA_EXPECTS(i < size_);
    return tx_power_w_[i];
  }

  /// Materializes device i (for slow paths that want the value type).
  DeviceProfile device(std::size_t i) const {
    FEDRA_EXPECTS(i < size_);
    return DeviceProfile{cycles_per_bit_[i], dataset_bits_[i],
                         capacitance_[i], max_freq_hz_[i], tx_power_w_[i]};
  }

 private:
  const double* cycles_per_bit_ = nullptr;
  const double* dataset_bits_ = nullptr;
  const double* capacitance_ = nullptr;
  const double* max_freq_hz_ = nullptr;
  const double* tx_power_w_ = nullptr;
  std::size_t size_ = 0;
};

/// Samples device `device_id` of the fleet keyed by `seed` — a pure
/// function of (seed, device_id), independent of every other device.
/// Field draws match make_fleet()'s order (dataset, cycles, freq, power)
/// against a stream seeded by two SplitMix64 steps over the pair, the
/// same (base_seed, id) hash serve::SessionManager uses for sessions.
DeviceProfile sample_device(const FleetModel& model, std::uint64_t seed,
                            std::uint64_t device_id);

/// Fills devices [begin, end) of `out` (sized >= end) via sample_device.
/// Disjoint ranges commute: any shard-parallel schedule produces the same
/// fleet bitwise as one sequential fill_fleet_range(out, 0, n, ...).
void fill_fleet_range(FleetState& out, std::size_t begin, std::size_t end,
                      const FleetModel& model, std::uint64_t seed);

/// Samples an n-device fleet with order-independent per-device draws.
FleetState make_fleet_state(std::size_t n, const FleetModel& model,
                            std::uint64_t seed);

}  // namespace fedra
