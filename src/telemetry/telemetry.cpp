#include "telemetry/telemetry.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/contracts.hpp"

namespace fedra::telemetry {

namespace {

// Global telemetry state. Registry and span buffer are function-local
// statics constructed on first touch and intentionally leaked via the
// static-duration idiom so atexit flushing and late worker-thread
// recording are both safe.
struct GlobalState {
  std::mutex mutex;           // guards config swaps and flush
  TelemetryConfig config;
  std::unique_ptr<SpanBuffer> spans;
  bool atexit_registered = false;
};

// Heap-allocated and never destroyed: the atexit flush and worker threads
// that outlive main() must be able to touch this state after static
// destruction has begun, so destruction order must never apply to it.
GlobalState& state() {
  static GlobalState* s = new GlobalState();
  return *s;
}

void flush_at_exit() { Telemetry::flush(); }

}  // namespace

std::atomic<bool>& Telemetry::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

MetricsRegistry& Telemetry::metrics() {
  // Immortal for the same reason as state(): handles bound in other
  // translation units' statics and the atexit flush may read it during
  // (or after) static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

SpanBuffer& Telemetry::spans() {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  if (!s.spans) s.spans = std::make_unique<SpanBuffer>();
  return *s.spans;
}

const TelemetryConfig& Telemetry::config() { return state().config; }

void Telemetry::enable(const TelemetryConfig& config) {
  auto& s = state();
  {
    std::lock_guard lock(s.mutex);
    s.config = config;
    // The span buffer is re-created only while empty or when capacity
    // changes; live TraceSpan objects hold no buffer pointers, so a swap
    // between iterations is safe.
    if (!s.spans || s.spans->capacity() != config.span_capacity) {
      s.spans = std::make_unique<SpanBuffer>(config.span_capacity);
    }
    const bool wants_files =
        !config.jsonl_path.empty() || !config.chrome_trace_path.empty();
    if (wants_files && !s.atexit_registered) {
      std::atexit(flush_at_exit);
      s.atexit_registered = true;
    }
  }
  enabled_flag().store(true, std::memory_order_relaxed);
}

void Telemetry::disable() {
  enabled_flag().store(false, std::memory_order_relaxed);
}

void Telemetry::flush() {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  if (s.config.jsonl_path.empty() && s.config.chrome_trace_path.empty()) {
    return;
  }
  const MetricsSnapshot metric_snap = metrics().snapshot();
  const std::vector<SpanRecord> span_snap =
      s.spans ? s.spans->snapshot() : std::vector<SpanRecord>{};
  if (!s.config.jsonl_path.empty()) {
    std::ofstream os(s.config.jsonl_path, std::ios::trunc);
    if (os) write_jsonl(os, metric_snap, span_snap);
  }
  if (!s.config.chrome_trace_path.empty()) {
    std::ofstream os(s.config.chrome_trace_path, std::ios::trunc);
    if (os) write_chrome_trace(os, span_snap);
  }
}

std::string Telemetry::summary() {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  return format_text_summary(
      metrics().snapshot(),
      s.spans ? s.spans->snapshot() : std::vector<SpanRecord>{});
}

void Telemetry::reset() {
  metrics().reset_values();
  auto& s = state();
  std::lock_guard lock(s.mutex);
  if (s.spans) s.spans->clear();
}

void TraceSpan::finish() {
  const double end_us = now_us();
  const double dur_us = end_us - start_us_;
  if (live::flight_recorder_enabled()) {
    // The black box sees every span even with telemetry off; the context
    // was already restored, so stamp this span's own ids explicitly.
    live::ScopedTraceContext as_self({trace_id_, span_id_});
    live::record_flight(name_, start_us_, dur_us, live::FlightKind::kSpan);
  }
  if (!telemetry_on_) return;
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.dur_us = dur_us;
  record.tid = current_thread_id();
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = prev_.span_id;
  Telemetry::spans().push(record);
  // Mirror into a duration histogram so span phases show up in metric
  // sinks even when the span buffer overflows.
  Telemetry::metrics().histogram(record.name).record(record.dur_us);
}

}  // namespace fedra::telemetry
