#include "telemetry/metrics.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fedra::telemetry {

namespace detail {

namespace {

// Relaxed CAS loop for atomic min/max of doubles. The first recorded
// sample initializes both extrema (signalled by count == 0 before the
// caller's increment), handled by record() below.
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void HistogramCell::record(double v) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds.begin());
  counts[bucket].fetch_add(1, std::memory_order_relaxed);
  // Seed extrema on the first sample. Racy first-sample seeding can lose
  // one competing extreme; the subsequent min/max CAS repairs it because
  // every recorder also runs the CAS below.
  if (count.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_v.store(v, std::memory_order_relaxed);
    max_v.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_v, v);
  atomic_max(max_v, v);
  sum.fetch_add(v, std::memory_order_relaxed);
}

}  // namespace detail

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t n) {
  FEDRA_EXPECTS(start > 0.0 && factor > 1.0 && n > 0);
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& default_duration_bounds_us() {
  static const std::vector<double> bounds =
      exponential_bounds(1.0, 2.0, 33);  // 1us .. ~2.4 hours
  return bounds;
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double target = q / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lo_seen = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) < target) continue;
    // Interpolate inside bucket i between its lower and upper bound,
    // clamped to the observed extrema (the overflow bucket has no upper
    // bound; the underflow interpolation starts at min).
    const double lo = i == 0 ? min : bounds[i - 1];
    const double hi = i < bounds.size() ? std::min(bounds[i], max) : max;
    const double frac =
        counts[i] > 0
            ? (target - lo_seen) / static_cast<double>(counts[i])
            : 0.0;
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_cells_.emplace_back();
    counter_cells_.back().name = name;
    it = counters_.emplace(name, &counter_cells_.back()).first;
  }
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_cells_.emplace_back();
    gauge_cells_.back().name = name;
    it = gauges_.emplace(name, &gauge_cells_.back()).first;
  }
  return Gauge(it->second);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_duration_bounds_us();
    FEDRA_EXPECTS(std::is_sorted(bounds.begin(), bounds.end()));
    histogram_cells_.emplace_back();
    auto& cell = histogram_cells_.back();
    cell.name = name;
    cell.bounds = std::move(bounds);
    cell.counts = std::make_unique<std::atomic<std::uint64_t>[]>(
        cell.bounds.size() + 1);
    for (std::size_t i = 0; i <= cell.bounds.size(); ++i) {
      cell.counts[i].store(0, std::memory_order_relaxed);
    }
    it = histograms_.emplace(name, &cell).first;
  }
  return Histogram(it->second);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace_back(name,
                               cell->value.load(std::memory_order_relaxed));
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace_back(name,
                             cell->value.load(std::memory_order_relaxed));
  }
  for (const auto& [name, cell] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = cell->bounds;
    h.counts.resize(cell->bounds.size() + 1);
    for (std::size_t i = 0; i <= cell->bounds.size(); ++i) {
      h.counts[i] = cell->counts[i].load(std::memory_order_relaxed);
    }
    h.count = cell->count.load(std::memory_order_relaxed);
    h.sum = cell->sum.load(std::memory_order_relaxed);
    h.min = cell->min_v.load(std::memory_order_relaxed);
    h.max = cell->max_v.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& cell : counter_cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (auto& cell : gauge_cells_) {
    cell.value.store(0.0, std::memory_order_relaxed);
  }
  for (auto& cell : histogram_cells_) {
    for (std::size_t i = 0; i <= cell.bounds.size(); ++i) {
      cell.counts[i].store(0, std::memory_order_relaxed);
    }
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0.0, std::memory_order_relaxed);
    cell.min_v.store(0.0, std::memory_order_relaxed);
    cell.max_v.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace fedra::telemetry
