// Trace spans and scoped timers.
//
// TraceSpan is an RAII wall-clock interval pushed into a bounded
// in-memory SpanBuffer (and mirrored into a duration histogram), meant
// for coarse phases: an FL round, a PPO update, an episode rollout.
// ScopedTimer is the histogram-only sibling for finer sites where
// per-event span records would swamp the buffer (minibatches, pool
// tasks). Both read Telemetry::enabled() once in the constructor and do
// literally nothing else when telemetry is off — no clock reads, no
// allocation, no locking.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace fedra::telemetry {

/// Microseconds since the process-wide telemetry epoch (first use of the
/// clock). Monotonic (steady_clock).
double now_us();

/// Small dense id for the calling thread (0 = first thread seen).
std::uint32_t current_thread_id();

/// One completed span. `name` must point at storage that outlives the
/// buffer — instrumentation sites pass string literals. The trace ids
/// come from live::TraceContext: all spans of one logical request/arm
/// share `trace_id` even across threads, and `parent_span_id` links each
/// span to the span that was open when it started (0 = trace root).
struct SpanRecord {
  const char* name = "";
  double start_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// Bounded MPMC span sink: a mutex-protected vector that stops growing at
/// capacity and counts what it drops. Coarse-grained spans arrive at Hz,
/// not MHz, so a mutex is the right tool (CP.2: keep it simple).
class SpanBuffer {
 public:
  explicit SpanBuffer(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  void push(const SpanRecord& record);

  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
};

}  // namespace fedra::telemetry
