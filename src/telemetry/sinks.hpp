// Pluggable telemetry exporters. All three consume the same immutable
// snapshot types (MetricsSnapshot + a vector of SpanRecords), so sinks
// never touch live atomics and a flush is a consistent-enough point-in-
// time view.
//
//   - write_jsonl: one JSON object per line — counters, gauges,
//     histograms (with bucket arrays and percentile estimates), then one
//     line per span. This is the machine-readable format
//     tools/telemetry_report consumes.
//   - write_chrome_trace: the Chrome trace-event format ("X" complete
//     events); load the file at chrome://tracing or ui.perfetto.dev.
//   - format_text_summary: fixed-width human-readable dump used by
//     Telemetry::summary().
//   - write_prometheus: Prometheus text exposition format 0.0.4 —
//     `# HELP`/`# TYPE` headers per metric, counters/gauges as single
//     samples, histograms as cumulative `_bucket{le=...}` series plus
//     `_sum`/`_count`, names sanitized to the [a-zA-Z0-9_:] metric-name
//     alphabet (HELP carries the original unsanitized name).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace fedra::telemetry {

void write_jsonl(std::ostream& os, const MetricsSnapshot& metrics,
                 const std::vector<SpanRecord>& spans);

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans);

std::string format_text_summary(const MetricsSnapshot& metrics,
                                const std::vector<SpanRecord>& spans);

/// Prometheus text exposition (scrape) format. Spans are not exported —
/// every TraceSpan already feeds a duration histogram of the same name.
void write_prometheus(std::ostream& os, const MetricsSnapshot& metrics);

/// Maps an arbitrary metric name onto the Prometheus metric-name alphabet
/// ([a-zA-Z0-9_:], not starting with a digit): every other byte becomes
/// '_' ("sim.iter_time_s" -> "sim_iter_time_s").
std::string prometheus_sanitize(const std::string& name);

/// Escapes `\` and newline for Prometheus `# HELP` text.
std::string prometheus_escape_help(const std::string& text);

/// Escapes `"` `\` and control characters for embedding in JSON strings.
std::string json_escape(const std::string& s);

}  // namespace fedra::telemetry
