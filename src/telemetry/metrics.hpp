// Thread-safe metrics primitives: counters, gauges, and fixed-bucket
// histograms, all registered once in a MetricsRegistry and then accessed
// through cheap value-type handles. Registration takes a mutex and a map
// lookup; every hot-path update afterwards is a handful of relaxed atomic
// ops on cells whose addresses are stable for the registry's lifetime
// (cells live in deques, which never relocate elements).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fedra::telemetry {

namespace detail {

struct CounterCell {
  std::string name;
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistogramCell {
  std::string name;
  /// Ascending upper bounds; values > bounds.back() land in the overflow
  /// bucket, so counts.size() == bounds.size() + 1.
  std::vector<double> bounds;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min_v{0.0};
  std::atomic<double> max_v{0.0};

  void record(double v);
};

}  // namespace detail

/// Monotonically increasing integer metric. Handles are null until bound
/// to a registry cell; operations on a null handle are no-ops, so a
/// default-constructed handle is a safe "telemetry off" placeholder.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) {
    if (cell_) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0;
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-write-wins scalar (queue depths, learning-rate-style knobs).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_) cell_->value.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (cell_) cell_->value.fetch_add(d, std::memory_order_relaxed);
  }
  double value() const {
    return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0.0;
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram. record() is lock-free: one bucket increment
/// plus count/sum/min/max updates, all relaxed.
class Histogram {
 public:
  Histogram() = default;
  void record(double v) {
    if (cell_) cell_->record(v);
  }
  std::uint64_t count() const {
    return cell_ ? cell_->count.load(std::memory_order_relaxed) : 0;
  }
  double sum() const {
    return cell_ ? cell_->sum.load(std::memory_order_relaxed) : 0.0;
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Geometric bucket upper bounds: start, start*factor, ... (n values).
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t n);

/// Default duration buckets in microseconds: 1us .. ~2.3 hours.
const std::vector<double>& default_duration_bounds_us();

/// Read-only copy of one histogram's state, used by sinks and tests.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Percentile estimate by linear interpolation within the owning
  /// bucket (q in [0, 100]).
  double percentile(double q) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent: the same name always returns a handle to the same cell.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` must be ascending; empty means default duration buckets.
  /// Bounds are fixed at first registration; later calls with the same
  /// name ignore the argument.
  Histogram histogram(const std::string& name,
                      std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric value but keeps all cells registered, so
  /// previously handed-out handles remain valid.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::deque<detail::CounterCell> counter_cells_;
  std::deque<detail::GaugeCell> gauge_cells_;
  std::deque<detail::HistogramCell> histogram_cells_;
  std::map<std::string, detail::CounterCell*> counters_;
  std::map<std::string, detail::GaugeCell*> gauges_;
  std::map<std::string, detail::HistogramCell*> histograms_;
};

}  // namespace fedra::telemetry
