#include "telemetry/span.hpp"

#include <atomic>

namespace fedra::telemetry {

double now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch)
      .count();
}

std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SpanBuffer::push(const SpanRecord& record) {
  std::lock_guard lock(mutex_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(record);
}

std::vector<SpanRecord> SpanBuffer::snapshot() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::size_t SpanBuffer::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::uint64_t SpanBuffer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void SpanBuffer::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
  dropped_ = 0;
}

}  // namespace fedra::telemetry
