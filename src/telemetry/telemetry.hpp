// Process-wide telemetry facade.
//
// Telemetry is DISABLED by default and every instrumentation primitive
// (TraceSpan, ScopedTimer, FEDRA_TELEMETRY_IF) keys off one relaxed
// atomic load, so instrumented hot paths cost one predictable branch
// when off — no clock reads, no registration, no locks. Executables opt
// in at startup:
//
//   telemetry::TelemetryConfig cfg;
//   cfg.jsonl_path = "run.jsonl";              // metrics + span events
//   cfg.chrome_trace_path = "run.trace.json";  // chrome://tracing spans
//   telemetry::Telemetry::enable(cfg);
//   ...
//   telemetry::Telemetry::flush();             // also runs at exit
//
// Instrumentation sites use lazily-bound handles:
//
//   FEDRA_TELEMETRY_IF {
//     static auto c = telemetry::Telemetry::metrics().counter("sim.iters");
//     c.add();
//   }
//   FEDRA_TRACE_SPAN("ppo_update");  // RAII span for the enclosing scope
#pragma once

#include <string>

#include "live/flight_recorder.hpp"
#include "live/trace_context.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/span.hpp"

namespace fedra::telemetry {

struct TelemetryConfig {
  std::string jsonl_path;         ///< "" = keep metrics in memory only
  std::string chrome_trace_path;  ///< "" = no chrome trace export
  std::size_t span_capacity = 1 << 16;
};

class Telemetry {
 public:
  /// The one branch every instrumentation site pays when telemetry is off.
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Turns collection on. Sink paths are written by flush(); an atexit
  /// flush is registered on the first enable with any sink path set.
  static void enable(const TelemetryConfig& config = {});
  static void disable();

  static MetricsRegistry& metrics();
  static SpanBuffer& spans();
  static const TelemetryConfig& config();

  /// Writes the JSONL metrics/span file and the Chrome trace file (for
  /// whichever paths are configured). Safe to call repeatedly; each call
  /// rewrites the files from the current state.
  static void flush();

  /// Human-readable dump of all metrics and a per-span-name breakdown.
  static std::string summary();

  /// Clears metric values and the span buffer (handles stay valid).
  static void reset();

 private:
  static std::atomic<bool>& enabled_flag();
};

/// RAII span: records [construction, destruction) of the enclosing scope
/// into the global span buffer and a `<name>` duration histogram. `name`
/// must be a string literal (stored by pointer).
///
/// A live span also participates in trace-context propagation: it
/// derives its trace id from the thread's live::TraceContext (opening a
/// fresh trace when there is none), installs itself as the context's
/// current span for the scope, and restores the previous context on
/// exit. When only the flight recorder is on (telemetry off), the span
/// still times itself and records a ring slot, but touches no buffer or
/// histogram — so the always-on black box never allocates.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    telemetry_on_ = Telemetry::enabled();
    if (telemetry_on_ || live::flight_recorder_enabled()) {
      name_ = name;
      start_us_ = now_us();
      live::TraceContext& ctx = live::current_trace_context();
      prev_ = ctx;
      trace_id_ = ctx.trace_id != 0 ? ctx.trace_id : live::next_trace_id();
      span_id_ = live::next_trace_id();
      ctx = {trace_id_, span_id_};
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      live::current_trace_context() = prev_;
      finish();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void finish();

  const char* name_ = nullptr;  ///< nullptr = nothing observing at entry
  double start_us_ = 0.0;
  bool telemetry_on_ = false;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  live::TraceContext prev_;  ///< context to restore (prev_.span_id = parent)
};

/// RAII timer: records the scope duration (microseconds) into a caller-
/// provided histogram handle; no span record, so it is safe at minibatch
/// or per-task frequency.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram hist) {
    if (Telemetry::enabled() && hist.valid()) {
      hist_ = hist;
      start_us_ = now_us();
      active_ = true;
    }
  }
  ~ScopedTimer() {
    if (active_) hist_.record(now_us() - start_us_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram hist_;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace fedra::telemetry

// Guard for metric updates: the body (handle binding + atomic bump) runs
// only when telemetry is enabled.
#define FEDRA_TELEMETRY_IF if (::fedra::telemetry::Telemetry::enabled())

#define FEDRA_TELEMETRY_CONCAT_IMPL_(a, b) a##b
#define FEDRA_TELEMETRY_CONCAT_(a, b) FEDRA_TELEMETRY_CONCAT_IMPL_(a, b)

/// Declares an RAII span covering the rest of the enclosing scope.
#define FEDRA_TRACE_SPAN(name)                        \
  ::fedra::telemetry::TraceSpan FEDRA_TELEMETRY_CONCAT_( \
      fedra_trace_span_, __LINE__)(name)
