#include "telemetry/sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace fedra::telemetry {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

struct SpanAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
};

std::map<std::string, SpanAgg> aggregate_spans(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanAgg> agg;
  for (const auto& s : spans) {
    auto& a = agg[s.name];
    if (a.count == 0) {
      a.min_us = s.dur_us;
      a.max_us = s.dur_us;
    } else {
      a.min_us = std::min(a.min_us, s.dur_us);
      a.max_us = std::max(a.max_us, s.dur_us);
    }
    ++a.count;
    a.total_us += s.dur_us;
  }
  return agg;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_jsonl(std::ostream& os, const MetricsSnapshot& metrics,
                 const std::vector<SpanRecord>& spans) {
  for (const auto& [name, value] : metrics.counters) {
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
       << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : metrics.gauges) {
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
       << "\",\"value\":" << fmt_double(value) << "}\n";
  }
  for (const auto& h : metrics.histograms) {
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
       << "\",\"count\":" << h.count << ",\"sum\":" << fmt_double(h.sum)
       << ",\"min\":" << fmt_double(h.min)
       << ",\"max\":" << fmt_double(h.max)
       << ",\"mean\":" << fmt_double(h.mean())
       << ",\"p50\":" << fmt_double(h.percentile(50.0))
       << ",\"p90\":" << fmt_double(h.percentile(90.0))
       << ",\"p99\":" << fmt_double(h.percentile(99.0)) << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ',';
      os << fmt_double(h.bounds[i]);
    }
    os << "],\"bucket_counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) os << ',';
      os << h.counts[i];
    }
    os << "]}\n";
  }
  for (const auto& s : spans) {
    os << "{\"type\":\"span\",\"name\":\"" << json_escape(s.name)
       << "\",\"ts_us\":" << fmt_double(s.start_us)
       << ",\"dur_us\":" << fmt_double(s.dur_us) << ",\"tid\":" << s.tid;
    if (s.trace_id != 0) {
      // Hex strings, not numbers: full-width 64-bit ids do not survive a
      // double-precision JSON number parse.
      os << ",\"trace_id\":\"" << fmt_hex64(s.trace_id) << "\",\"span_id\":\""
         << fmt_hex64(s.span_id) << "\",\"parent_span_id\":\""
         << fmt_hex64(s.parent_span_id) << '"';
    }
    os << "}\n";
  }
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\"fedra\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
       << ",\"ts\":" << fmt_double(s.start_us)
       << ",\"dur\":" << fmt_double(s.dur_us);
    if (s.trace_id != 0) {
      // The causal annotations: every span of one serve request / sweep
      // arm carries the same trace id even when rows complete on the
      // batcher thread and the client blocked elsewhere.
      os << ",\"args\":{\"trace_id\":\"" << fmt_hex64(s.trace_id)
         << "\",\"span_id\":\"" << fmt_hex64(s.span_id)
         << "\",\"parent_span_id\":\"" << fmt_hex64(s.parent_span_id)
         << "\"}";
    }
    os << "}";
  }
  os << "]}\n";
}

std::string prometheus_escape_help(const std::string& text) {
  // Exposition-format HELP escaping: backslash and newline only.
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void write_prometheus(std::ostream& os, const MetricsSnapshot& metrics) {
  for (const auto& [name, value] : metrics.counters) {
    const std::string n = prometheus_sanitize(name);
    os << "# HELP " << n << " fedra metric " << prometheus_escape_help(name)
       << '\n';
    os << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : metrics.gauges) {
    const std::string n = prometheus_sanitize(name);
    os << "# HELP " << n << " fedra metric " << prometheus_escape_help(name)
       << '\n';
    os << "# TYPE " << n << " gauge\n" << n << ' ' << fmt_double(value)
       << '\n';
  }
  for (const auto& h : metrics.histograms) {
    const std::string n = prometheus_sanitize(h.name);
    os << "# HELP " << n << " fedra metric " << prometheus_escape_help(h.name)
       << '\n';
    os << "# TYPE " << n << " histogram\n";
    // Exposition buckets are CUMULATIVE, unlike the per-bucket counts the
    // registry stores; the +Inf bucket always equals the total count.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      os << n << "_bucket{le=\"" << fmt_double(h.bounds[i]) << "\"} "
         << cumulative << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << n << "_sum " << fmt_double(h.sum) << '\n';
    os << n << "_count " << h.count << '\n';
  }
}

std::string format_text_summary(const MetricsSnapshot& metrics,
                                const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  char line[256];

  if (!metrics.counters.empty()) {
    out << "== counters ==\n";
    for (const auto& [name, value] : metrics.counters) {
      std::snprintf(line, sizeof(line), "  %-32s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << line;
    }
  }
  if (!metrics.gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& [name, value] : metrics.gauges) {
      std::snprintf(line, sizeof(line), "  %-32s %.6g\n", name.c_str(),
                    value);
      out << line;
    }
  }
  if (!metrics.histograms.empty()) {
    out << "== histograms ==\n";
    std::snprintf(line, sizeof(line), "  %-32s %10s %12s %12s %12s %12s\n",
                  "name", "count", "mean", "p50", "p99", "max");
    out << line;
    for (const auto& h : metrics.histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-32s %10llu %12.3f %12.3f %12.3f %12.3f\n",
                    h.name.c_str(),
                    static_cast<unsigned long long>(h.count), h.mean(),
                    h.percentile(50.0), h.percentile(99.0), h.max);
      out << line;
    }
  }
  const auto agg = aggregate_spans(spans);
  if (!agg.empty()) {
    double grand_total = 0.0;
    for (const auto& [name, a] : agg) grand_total += a.total_us;
    out << "== spans ==\n";
    std::snprintf(line, sizeof(line),
                  "  %-24s %8s %12s %12s %12s %7s\n", "phase", "count",
                  "total_ms", "mean_ms", "max_ms", "share");
    out << line;
    for (const auto& [name, a] : agg) {
      std::snprintf(
          line, sizeof(line),
          "  %-24s %8llu %12.3f %12.3f %12.3f %6.1f%%\n", name.c_str(),
          static_cast<unsigned long long>(a.count), a.total_us / 1e3,
          a.total_us / 1e3 / static_cast<double>(a.count), a.max_us / 1e3,
          grand_total > 0.0 ? 100.0 * a.total_us / grand_total : 0.0);
      out << line;
    }
  }
  return out.str();
}

}  // namespace fedra::telemetry
