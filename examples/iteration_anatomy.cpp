// Anatomy of one federated iteration — the paper's Fig. 3, with numbers.
//
// Runs a single synchronized iteration twice on identical conditions:
// once at full speed (devices B and C finish early and idle, burning
// energy for nothing) and once with the oracle's frequency assignment
// (the fast devices throttle to land exactly on the straggler's finish).
// Prints the per-device compute/upload/idle breakdown and an ASCII
// timeline for both, making the idle-time-for-energy trade visible.
#include <algorithm>
#include <cstdio>
#include <string>

#include "sched/baselines.hpp"
#include "sim/experiment_config.hpp"

namespace {

using namespace fedra;

void print_timeline(const IterationResult& r) {
  const double total = r.iteration_time;
  const int width = 60;
  for (std::size_t i = 0; i < r.devices.size(); ++i) {
    const auto& d = r.devices[i];
    const int c = std::max(1, static_cast<int>(d.compute_time / total * width));
    const int m = std::max(1, static_cast<int>(d.comm_time / total * width));
    const int idle = std::max(0, width - c - m);
    std::string bar = std::string(c, '#') + std::string(m, '>') +
                      std::string(idle, '.');
    std::printf("  device %zu |%s|\n", i, bar.c_str());
  }
  std::printf("            ('#' compute, '>' upload, '.' idle; width = "
              "T^k = %.2f s)\n",
              total);
}

void print_breakdown(const char* title, const IterationResult& r,
                     const SimulatorBase& sim) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-8s %10s %10s %10s %10s %10s %10s\n", "device", "freq(GHz)",
              "t_cmp(s)", "t_com(s)", "idle(s)", "E_cmp(J)", "E_com(J)");
  for (std::size_t i = 0; i < r.devices.size(); ++i) {
    const auto& d = r.devices[i];
    std::printf("%-8zu %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n", i,
                d.freq_hz / 1e9, d.compute_time, d.comm_time, d.idle_time,
                d.compute_energy, d.comm_energy);
  }
  std::printf("T^k = %.3f s | total E = %.3f J | cost (lambda=%.2f) = "
              "%.3f\n",
              r.iteration_time, r.total_energy, sim.params().lambda, r.cost);
  print_timeline(r);
}

}  // namespace

int main() {
  using namespace fedra;
  std::printf("Anatomy of one synchronized FL iteration (paper Fig. 3)\n");

  ExperimentConfig cfg = testbed_config();
  cfg.trace_samples = 1200;
  cfg.seed = 7;
  auto sim = build_simulator(cfg);

  FullSpeedController full;
  auto r_full = sim.preview(full.decide(sim), StepOptions::dry_run(0.0));
  print_breakdown("full speed: fast devices idle at the barrier", r_full,
                  sim);

  OracleController oracle;
  auto r_oracle = sim.preview(oracle.decide(sim), StepOptions::dry_run(0.0));
  print_breakdown("oracle DVFS: everyone lands on the straggler's finish",
                  r_oracle, sim);

  const double saved =
      r_full.total_compute_energy - r_oracle.total_compute_energy;
  std::printf("\ncomputation energy saved by throttling: %.3f J (%.0f%%) "
              "at +%.3f s of makespan\n",
              saved, 100.0 * saved / r_full.total_compute_energy,
              r_oracle.iteration_time - r_full.iteration_time);
  return 0;
}
