// Trace explorer: generate or load bandwidth traces, print their
// statistics and an ASCII sparkline, and export to CSV for plotting.
//
// Usage:
//   trace_explorer                     # both built-in presets
//   trace_explorer lte_walking 600     # preset + duration (seconds)
//   trace_explorer path/to/trace.csv   # inspect a measured trace
#include <cstdio>
#include <string>

#include "trace/generator.hpp"
#include "trace/loader.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace fedra;

void sparkline(const BandwidthTrace& trace, std::size_t width = 72) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  const double lo = trace.min_bandwidth();
  const double hi = trace.max_bandwidth();
  const double span = hi > lo ? hi - lo : 1.0;
  const double step = trace.duration() / static_cast<double>(width);
  std::printf("  [");
  for (std::size_t i = 0; i < width; ++i) {
    const double t0 = static_cast<double>(i) * step;
    const double avg = trace.average_bandwidth(t0, t0 + step);
    const auto lvl = static_cast<std::size_t>((avg - lo) / span * 7.999);
    std::printf("%s", levels[lvl]);
  }
  std::printf("]\n");
}

void describe(const char* name, const BandwidthTrace& trace) {
  std::printf("%s: %zu samples @ %.1f s, duration %.0f s\n", name,
              trace.num_samples(), trace.resolution(), trace.duration());
  std::printf("  bandwidth (MB/s): min %.3f  mean %.3f  max %.3f\n",
              trace.min_bandwidth() / 1e6, trace.mean_bandwidth() / 1e6,
              trace.max_bandwidth() / 1e6);
  std::printf("  10 MB upload from t=0 takes %.2f s; from t=%0.f s takes "
              "%.2f s\n",
              trace.upload_duration(0.0, 10e6), trace.duration() / 2,
              trace.upload_duration(trace.duration() / 2, 10e6));
  sparkline(trace);
}

void export_csv(const BandwidthTrace& trace, const std::string& path) {
  CsvWriter w(path);
  w.write_row(CsvRow{"time_s", "bandwidth_bytes_per_s"});
  for (std::size_t j = 0; j < trace.num_samples(); ++j) {
    w.write_row(std::vector<double>{
        static_cast<double>(j) * trace.resolution(), trace.samples()[j]});
  }
  std::printf("  exported to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedra;
  Rng rng(99);

  if (argc >= 2 && std::string(argv[1]).find(".csv") != std::string::npos) {
    try {
      auto trace = load_trace_csv(argv[1]);
      describe(argv[1], trace);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1], e.what());
      return 1;
    }
    return 0;
  }

  const std::string preset = argc >= 2 ? argv[1] : "";
  const std::size_t seconds =
      argc >= 3 ? static_cast<std::size_t>(std::stoul(argv[2])) : 900;

  if (preset.empty() || preset == "lte_walking") {
    auto traces = generate_trace_set("lte_walking", 3, seconds, rng);
    std::printf("== preset lte_walking (Ghent 4G substitute) ==\n");
    for (std::size_t i = 0; i < traces.size(); ++i) {
      describe(("walking trace " + std::to_string(i + 1)).c_str(),
               traces[i]);
    }
    export_csv(traces[0], "lte_walking_sample.csv");
  }
  if (preset.empty() || preset == "hsdpa_bus") {
    auto traces = generate_trace_set("hsdpa_bus", 2, seconds, rng);
    std::printf("\n== preset hsdpa_bus (Norway HSDPA substitute) ==\n");
    for (std::size_t i = 0; i < traces.size(); ++i) {
      describe(("bus trace " + std::to_string(i + 1)).c_str(), traces[i]);
    }
  }
  return 0;
}
