// Quickstart: the whole fedra pipeline in ~60 lines.
//
//   1. Build the paper's 3-device testbed scenario (synthetic 4G walking
//      traces + a heterogeneous device fleet).
//   2. Train the experience-driven DRL agent offline (Algorithm 1).
//   3. Run online reasoning and compare against the Heuristic [3] and
//      Static [4] baselines on identical conditions.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/drl_controller.hpp"
#include "core/evaluation.hpp"
#include "core/offline_trainer.hpp"
#include "sched/baselines.hpp"
#include "sim/experiment_config.hpp"

int main() {
  using namespace fedra;

  // 1. Scenario: 3 devices, LTE walking traces, lambda-weighted cost.
  ExperimentConfig scenario = testbed_config();
  scenario.trace_samples = 1500;
  scenario.seed = 42;

  // 2. Offline training (Algorithm 1). recommended_trainer_config() holds
  //    the PPO hyper-parameters tuned for this control problem.
  FlEnvConfig env_cfg;
  env_cfg.slot_seconds = scenario.slot_seconds;
  env_cfg.history_slots = scenario.history_slots;
  env_cfg.episode_length = 40;
  FlEnv env(build_simulator(scenario), env_cfg);
  const double bandwidth_ref = env.bandwidth_ref();

  std::printf("training the DRL agent (1500 episodes)...\n");
  OfflineTrainer trainer(std::move(env), recommended_trainer_config(1500),
                         /*seed=*/7);
  auto history = trainer.train();
  std::printf("  first-episode avg cost: %.3f\n", history.front().avg_cost);
  std::printf("  last-episode  avg cost: %.3f\n", history.back().avg_cost);

  // 3. Online reasoning: identical simulator copy per controller.
  auto sim = build_simulator(scenario);
  DrlController drl(trainer.agent(), env_cfg, bandwidth_ref);
  HeuristicController heuristic(sim);
  Rng probe_rng(1);
  StaticController fixed(sim, 10, probe_rng);

  std::printf("\nonline evaluation, 300 iterations each:\n");
  for (Controller* c :
       std::initializer_list<Controller*>{&drl, &heuristic, &fixed}) {
    auto series = run_controller(sim, *c, 300);
    std::printf("  %-10s avg cost %.3f | avg time %.3f s | "
                "avg compute energy %.3f J\n",
                c->name().c_str(), series.avg_cost(), series.avg_time(),
                series.avg_compute_energy());
  }

  // Peek at one decision: frequencies as fractions of each cap.
  auto freqs = drl.decide(sim);
  std::printf("\nsample DRL decision (fraction of delta_max per device):");
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    std::printf(" %.2f", freqs[i] / sim.fleet().max_freq_hz(i));
  }
  std::printf("\n");
  return 0;
}
