// Adaptation under a network regime shift.
//
// The paper's core argument against Static [4] (and, one iteration behind,
// against Heuristic [3]) is that real network quality CHANGES. This
// example engineers an abrupt regime shift — a device walks from
// excellent coverage into a dead zone mid-run — and prints each policy's
// per-iteration decisions and costs around the shift, showing who adapts
// and how fast.
#include <cstdio>

#include "core/drl_controller.hpp"
#include "core/evaluation.hpp"
#include "core/offline_trainer.hpp"
#include "sched/baselines.hpp"
#include "sim/device.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "trace/transforms.hpp"

namespace {

using namespace fedra;

// Device 0's bandwidth collapses from 7 MB/s to 0.5 MB/s at t = 300 s and
// recovers at t = 600 s; the other devices stay steady at 4 MB/s.
BandwidthTrace shifting_trace() {
  return step_trace({{300.0, 7e6}, {300.0, 0.5e6}, {300.0, 7e6}});
}

FlSimulator make_sim() {
  Rng rng(11);
  FleetModel fm;
  auto fleet = make_fleet(3, fm, rng);
  std::vector<BandwidthTrace> traces{shifting_trace(),
                                     constant_trace(4e6, 900),
                                     constant_trace(4e6, 900)};
  CostParams params;
  params.lambda = 0.25;
  return FlSimulator(std::move(fleet), std::move(traces), params);
}

}  // namespace

int main() {
  using namespace fedra;
  std::printf("Adaptive scheduling across a bandwidth regime shift\n");
  std::printf("(device 0: 7 MB/s -> 0.5 MB/s at t=300 s -> 7 MB/s at "
              "t=600 s)\n\n");

  auto sim = make_sim();

  // Train a DRL agent directly on this environment.
  FlEnvConfig env_cfg;
  env_cfg.episode_length = 30;
  FlEnv env(sim, env_cfg);
  const double bw_ref = env.bandwidth_ref();
  std::printf("training DRL agent on the shifting environment...\n\n");
  OfflineTrainer trainer(std::move(env), recommended_trainer_config(1200),
                         /*seed=*/3);
  trainer.train();

  DrlController drl(trainer.agent(), env_cfg, bw_ref);
  HeuristicController heuristic(sim);
  Rng rng(4);
  StaticController fixed(sim, 10, rng);

  // Walk all three controllers through the same timeline and log the
  // decisions for device 0 (the shifting one).
  struct Row {
    double t;
    double frac[3];
    double cost[3];
  };
  std::vector<Controller*> roster{&drl, &heuristic, &fixed};
  std::vector<FlSimulator> sims{sim, sim, sim};
  for (auto& s : sims) s.reset(250.0);  // start inside the good phase

  std::printf("%-9s | %-25s | %-25s\n", "t (s)",
              "device-0 freq fraction", "iteration cost");
  std::printf("%-9s | %7s %8s %8s | %7s %8s %8s\n", "", "drl", "heur",
              "static", "drl", "heur", "static");
  for (int k = 0; k < 32; ++k) {
    Row row{};
    row.t = sims[0].now();
    for (std::size_t c = 0; c < roster.size(); ++c) {
      auto freqs = roster[c]->decide(sims[c]);
      auto r = sims[c].step(freqs, {});
      roster[c]->observe(r);
      row.frac[c] = r.outcome(0).freq_hz / sims[c].fleet().max_freq_hz(0);
      row.cost[c] = r.cost;
    }
    std::printf("%-9.1f | %7.2f %8.2f %8.2f | %7.2f %8.2f %8.2f\n", row.t,
                row.frac[0], row.frac[1], row.frac[2], row.cost[0],
                row.cost[1], row.cost[2]);
  }

  std::printf("\nReading the table: the static policy never changes its "
              "assignment and overpays\nthroughout the dead zone. The "
              "heuristic reacts one iteration late at BOTH edges\n— it "
              "overpays at t=300 s (still assuming a fast network) and "
              "again at t=600 s\n(still assuming the dead zone, running "
              "device 0 flat-out long after recovery).\nThe DRL agent "
              "reads the current bandwidth history and re-throttles "
              "within the\nsame iteration at both transitions.\n");
  return 0;
}
