// Real federated learning under scheduled CPU frequencies.
//
// This example couples the two halves of the system the paper describes:
// the FL *simulator* prices each synchronized round (time + energy under
// the chosen frequencies and live bandwidth), while a REAL FedAvg loop
// trains an MLP on non-IID shards of a synthetic classification task.
// Training stops when the global loss satisfies constraint (10):
// F(w) < epsilon.
//
// Output: one row per round — global loss / accuracy from the real
// training, iteration time / energy / cost from the simulator — for both
// the heuristic scheduler and full speed, showing the scheduler saves
// energy without extra rounds (learning quality is frequency-independent;
// only wall-clock and energy change).
#include <cstdio>

#include "core/evaluation.hpp"
#include "fl/fedavg.hpp"
#include "sched/baselines.hpp"
#include "sim/experiment_config.hpp"

namespace {

using namespace fedra;

struct RunResult {
  std::size_t rounds = 0;
  double wall_clock = 0.0;
  double total_energy = 0.0;
  double total_cost = 0.0;
  double final_loss = 0.0;
  double final_accuracy = 0.0;
};

RunResult run(Controller& controller, const ExperimentConfig& cfg,
              double epsilon, bool verbose) {
  auto sim = build_simulator(cfg);

  // Non-IID federated data, shard sizes proportional to the simulated
  // per-device data volumes D_i.
  Rng data_rng(123);
  ModelSpec spec;
  spec.sizes = {10, 24, 6};
  auto data = make_gaussian_mixture(1500, 10, 6, data_rng, 1.3, 1.1);
  auto shards = split_dirichlet(data, sim.num_devices(), 0.5, data_rng);
  std::vector<FlClient> clients;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    clients.emplace_back(std::move(shards[i]), spec, 500 + i);
  }
  FedAvgServer server(std::move(clients), spec, 7);

  ThreadPool pool;
  LocalTrainConfig ltc;
  ltc.tau = sim.params().tau;
  ltc.learning_rate = 0.04;

  RunResult result;
  if (verbose) {
    std::printf("%-6s %10s %9s %10s %10s %10s\n", "round", "loss", "acc",
                "T^k (s)", "E^k (J)", "cost");
  }
  double loss = 1e9;
  while (loss >= epsilon && result.rounds < 60) {
    auto freqs = controller.decide(sim);
    auto iter = sim.step(freqs, {});
    controller.observe(iter);
    auto metrics = server.run_round(ltc, pool);
    loss = metrics.global_loss;
    ++result.rounds;
    result.wall_clock += iter.iteration_time;
    result.total_energy += iter.total_energy;
    result.total_cost += iter.cost;
    result.final_loss = loss;
    result.final_accuracy = metrics.global_accuracy;
    if (verbose) {
      std::printf("%-6zu %10.4f %9.3f %10.3f %10.3f %10.3f\n", result.rounds,
                  loss, metrics.global_accuracy, iter.iteration_time,
                  iter.total_energy, iter.cost);
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace fedra;
  std::printf("FedAvg on non-IID data with scheduled CPU frequencies\n");
  std::printf("(stop when global loss F(w) < epsilon — constraint (10))\n\n");

  ExperimentConfig cfg = testbed_config();
  cfg.trace_samples = 1500;
  const double epsilon = 0.35;

  std::printf("--- heuristic scheduler ---\n");
  auto sim_probe = build_simulator(cfg);
  HeuristicController heuristic(sim_probe);
  auto sched = run(heuristic, cfg, epsilon, /*verbose=*/true);

  std::printf("\n--- full speed (no DVFS) ---\n");
  FullSpeedController full;
  auto fullspeed = run(full, cfg, epsilon, /*verbose=*/false);
  std::printf("(per-round log suppressed; identical learning trajectory)\n");

  std::printf("\n%-22s %10s %10s\n", "", "heuristic", "fullspeed");
  std::printf("%-22s %10zu %10zu\n", "rounds to epsilon", sched.rounds,
              fullspeed.rounds);
  std::printf("%-22s %10.2f %10.2f\n", "wall clock (s)", sched.wall_clock,
              fullspeed.wall_clock);
  std::printf("%-22s %10.2f %10.2f\n", "total energy (J)",
              sched.total_energy, fullspeed.total_energy);
  std::printf("%-22s %10.2f %10.2f\n", "total cost (Eq. 9)",
              sched.total_cost, fullspeed.total_cost);
  std::printf("%-22s %10.3f %10.3f\n", "final accuracy",
              sched.final_accuracy, fullspeed.final_accuracy);
  return 0;
}
