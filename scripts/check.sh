#!/usr/bin/env bash
# One-command verification, the same five legs a PR must pass:
#
#   1. tier-1: default configure + build + full ctest;
#   2. sanitize: address,undefined build, `sanitize`-labeled suites
#      (`-L sanitize` regex-matches the combined sanitize_ckpt /
#      sanitize_serve / sanitize_tsan labels, so the checkpoint and
#      serving suites — including the serve admission/shutdown
#      threading tests — run under ASan/UBSan here);
#   3. tsan: thread-sanitizer build, `tsan`-labeled suites — the
#      concurrency-heavy tests (work-stealing scheduler, sweep engine,
#      serving stack, fleet pricing pools, async ledger, telemetry)
#      race-checked under TSan;
#   4. live: start the embedded observability exporter in-process
#      (tools/live_probe), fetch /metrics, /healthz, /statusz and the
#      flight-recorder dump over real TCP, validate every payload
#      (Prometheus line shapes + JSON parses), and verify clean
#      double-stop shutdown;
#   5. perf: smoke-run the perf harnesses and diff them against the
#      checked-in bench/baselines/ snapshots (`-L perf`); this leg also
#      enforces bench_serve's batched-vs-sequential speedup floor and
#      bit-exactness flag, bench_fleet's engine-vs-scalar-oracle
#      bitwise pricing contract (50 → 1M devices, pools {1,2,8}),
#      bench_gemm's reuse-not-slower gates, bench_obs's async-ledger
#      overhead ceiling plus hardware-graded training-speedup floor,
#      and bench_sweep's serial≡parallel bitwise-aggregate contract
#      plus hardware-graded sweep-speedup floor (the converted
#      bench_multiseed / bench_ablate_tau / bench_ablate_lambda smokes
#      assert the same serial≡parallel contract on their own grids),
#      via each bench's own exit code (gate booleans in the JSON are
#      also compared one-way against the baselines: a holding gate must
#      keep holding).
#
#   scripts/check.sh          # all four legs
#   scripts/check.sh --fast   # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then fast=1; fi
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: build + ctest (build/) =="
cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$fast" == 1 ]]; then
  echo "check.sh: tier-1 leg passed (--fast)"
  exit 0
fi

echo "== sanitize: address,undefined (build-asan/) =="
cmake -B build-asan -S . -DFEDRA_SANITIZE=address,undefined \
      -DFEDRA_BUILD_BENCH=OFF -DFEDRA_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan -L sanitize --output-on-failure -j "$jobs"

echo "== tsan: thread (build-tsan/) =="
cmake -B build-tsan -S . -DFEDRA_SANITIZE=thread \
      -DFEDRA_BUILD_BENCH=OFF -DFEDRA_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan -L tsan --output-on-failure -j "$jobs"

echo "== live: exporter smoke (build/tools/live_probe) =="
./build/tools/live_probe

echo "== perf: smoke + baseline regression (build/) =="
ctest --test-dir build -L perf --output-on-failure

echo "check.sh: all legs passed"
