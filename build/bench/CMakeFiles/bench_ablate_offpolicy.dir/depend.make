# Empty dependencies file for bench_ablate_offpolicy.
# This may be replaced when dependencies are built.
