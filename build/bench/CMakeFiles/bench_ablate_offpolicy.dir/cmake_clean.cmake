file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_offpolicy.dir/bench_ablate_offpolicy.cpp.o"
  "CMakeFiles/bench_ablate_offpolicy.dir/bench_ablate_offpolicy.cpp.o.d"
  "bench_ablate_offpolicy"
  "bench_ablate_offpolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_offpolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
