# Empty dependencies file for bench_ablate_algo.
# This may be replaced when dependencies are built.
