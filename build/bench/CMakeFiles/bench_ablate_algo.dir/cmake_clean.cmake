file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_algo.dir/bench_ablate_algo.cpp.o"
  "CMakeFiles/bench_ablate_algo.dir/bench_ablate_algo.cpp.o.d"
  "bench_ablate_algo"
  "bench_ablate_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
