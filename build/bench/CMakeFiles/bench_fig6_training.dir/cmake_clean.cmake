file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_training.dir/bench_fig6_training.cpp.o"
  "CMakeFiles/bench_fig6_training.dir/bench_fig6_training.cpp.o.d"
  "bench_fig6_training"
  "bench_fig6_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
