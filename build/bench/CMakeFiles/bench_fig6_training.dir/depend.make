# Empty dependencies file for bench_fig6_training.
# This may be replaced when dependencies are built.
