file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_lambda.dir/bench_ablate_lambda.cpp.o"
  "CMakeFiles/bench_ablate_lambda.dir/bench_ablate_lambda.cpp.o.d"
  "bench_ablate_lambda"
  "bench_ablate_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
