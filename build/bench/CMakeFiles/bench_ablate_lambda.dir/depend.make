# Empty dependencies file for bench_ablate_lambda.
# This may be replaced when dependencies are built.
