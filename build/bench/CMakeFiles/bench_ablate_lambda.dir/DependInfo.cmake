
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablate_lambda.cpp" "bench/CMakeFiles/bench_ablate_lambda.dir/bench_ablate_lambda.cpp.o" "gcc" "bench/CMakeFiles/bench_ablate_lambda.dir/bench_ablate_lambda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/fedra_env.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fedra_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedra_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedra_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fedra_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fedra_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
