# Empty compiler generated dependencies file for bench_ablate_state.
# This may be replaced when dependencies are built.
