file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_state.dir/bench_ablate_state.cpp.o"
  "CMakeFiles/bench_ablate_state.dir/bench_ablate_state.cpp.o.d"
  "bench_ablate_state"
  "bench_ablate_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
