# Empty dependencies file for bench_ablate_solver.
# This may be replaced when dependencies are built.
