file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_solver.dir/bench_ablate_solver.cpp.o"
  "CMakeFiles/bench_ablate_solver.dir/bench_ablate_solver.cpp.o.d"
  "bench_ablate_solver"
  "bench_ablate_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
