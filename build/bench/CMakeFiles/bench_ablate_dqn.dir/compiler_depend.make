# Empty compiler generated dependencies file for bench_ablate_dqn.
# This may be replaced when dependencies are built.
