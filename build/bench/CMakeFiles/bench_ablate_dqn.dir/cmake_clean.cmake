file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dqn.dir/bench_ablate_dqn.cpp.o"
  "CMakeFiles/bench_ablate_dqn.dir/bench_ablate_dqn.cpp.o.d"
  "bench_ablate_dqn"
  "bench_ablate_dqn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dqn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
