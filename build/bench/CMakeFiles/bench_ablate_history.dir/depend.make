# Empty dependencies file for bench_ablate_history.
# This may be replaced when dependencies are built.
