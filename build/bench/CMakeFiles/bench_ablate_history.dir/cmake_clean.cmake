file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_history.dir/bench_ablate_history.cpp.o"
  "CMakeFiles/bench_ablate_history.dir/bench_ablate_history.cpp.o.d"
  "bench_ablate_history"
  "bench_ablate_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
