file(REMOVE_RECURSE
  "CMakeFiles/bench_multiseed.dir/bench_multiseed.cpp.o"
  "CMakeFiles/bench_multiseed.dir/bench_multiseed.cpp.o.d"
  "bench_multiseed"
  "bench_multiseed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiseed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
