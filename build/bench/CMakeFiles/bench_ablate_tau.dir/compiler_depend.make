# Empty compiler generated dependencies file for bench_ablate_tau.
# This may be replaced when dependencies are built.
