file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_tau.dir/bench_ablate_tau.cpp.o"
  "CMakeFiles/bench_ablate_tau.dir/bench_ablate_tau.cpp.o.d"
  "bench_ablate_tau"
  "bench_ablate_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
