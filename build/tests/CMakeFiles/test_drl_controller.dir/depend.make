# Empty dependencies file for test_drl_controller.
# This may be replaced when dependencies are built.
