file(REMOVE_RECURSE
  "CMakeFiles/test_drl_controller.dir/test_drl_controller.cpp.o"
  "CMakeFiles/test_drl_controller.dir/test_drl_controller.cpp.o.d"
  "test_drl_controller"
  "test_drl_controller.pdb"
  "test_drl_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drl_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
