# Empty compiler generated dependencies file for test_online_adaptation.
# This may be replaced when dependencies are built.
