file(REMOVE_RECURSE
  "CMakeFiles/test_online_adaptation.dir/test_online_adaptation.cpp.o"
  "CMakeFiles/test_online_adaptation.dir/test_online_adaptation.cpp.o.d"
  "test_online_adaptation"
  "test_online_adaptation.pdb"
  "test_online_adaptation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
