file(REMOVE_RECURSE
  "CMakeFiles/test_offline_trainer.dir/test_offline_trainer.cpp.o"
  "CMakeFiles/test_offline_trainer.dir/test_offline_trainer.cpp.o.d"
  "test_offline_trainer"
  "test_offline_trainer.pdb"
  "test_offline_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
