# Empty compiler generated dependencies file for test_offline_trainer.
# This may be replaced when dependencies are built.
