# Empty compiler generated dependencies file for test_deadline_solver.
# This may be replaced when dependencies are built.
