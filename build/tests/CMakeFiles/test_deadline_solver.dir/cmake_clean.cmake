file(REMOVE_RECURSE
  "CMakeFiles/test_deadline_solver.dir/test_deadline_solver.cpp.o"
  "CMakeFiles/test_deadline_solver.dir/test_deadline_solver.cpp.o.d"
  "test_deadline_solver"
  "test_deadline_solver.pdb"
  "test_deadline_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadline_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
