file(REMOVE_RECURSE
  "CMakeFiles/test_bandwidth_trace.dir/test_bandwidth_trace.cpp.o"
  "CMakeFiles/test_bandwidth_trace.dir/test_bandwidth_trace.cpp.o.d"
  "test_bandwidth_trace"
  "test_bandwidth_trace.pdb"
  "test_bandwidth_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandwidth_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
