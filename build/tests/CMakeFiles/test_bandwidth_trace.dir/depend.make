# Empty dependencies file for test_bandwidth_trace.
# This may be replaced when dependencies are built.
