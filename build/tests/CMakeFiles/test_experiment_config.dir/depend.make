# Empty dependencies file for test_experiment_config.
# This may be replaced when dependencies are built.
