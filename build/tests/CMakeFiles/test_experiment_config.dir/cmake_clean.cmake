file(REMOVE_RECURSE
  "CMakeFiles/test_experiment_config.dir/test_experiment_config.cpp.o"
  "CMakeFiles/test_experiment_config.dir/test_experiment_config.cpp.o.d"
  "test_experiment_config"
  "test_experiment_config.pdb"
  "test_experiment_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
