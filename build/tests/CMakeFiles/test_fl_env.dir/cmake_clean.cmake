file(REMOVE_RECURSE
  "CMakeFiles/test_fl_env.dir/test_fl_env.cpp.o"
  "CMakeFiles/test_fl_env.dir/test_fl_env.cpp.o.d"
  "test_fl_env"
  "test_fl_env.pdb"
  "test_fl_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
