file(REMOVE_RECURSE
  "CMakeFiles/test_regularization.dir/test_regularization.cpp.o"
  "CMakeFiles/test_regularization.dir/test_regularization.cpp.o.d"
  "test_regularization"
  "test_regularization.pdb"
  "test_regularization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
