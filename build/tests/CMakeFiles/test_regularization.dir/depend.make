# Empty dependencies file for test_regularization.
# This may be replaced when dependencies are built.
