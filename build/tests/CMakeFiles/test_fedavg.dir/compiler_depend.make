# Empty compiler generated dependencies file for test_fedavg.
# This may be replaced when dependencies are built.
