# Empty dependencies file for test_layernorm.
# This may be replaced when dependencies are built.
