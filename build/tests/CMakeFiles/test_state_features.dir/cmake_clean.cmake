file(REMOVE_RECURSE
  "CMakeFiles/test_state_features.dir/test_state_features.cpp.o"
  "CMakeFiles/test_state_features.dir/test_state_features.cpp.o.d"
  "test_state_features"
  "test_state_features.pdb"
  "test_state_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
