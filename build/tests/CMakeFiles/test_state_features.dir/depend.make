# Empty dependencies file for test_state_features.
# This may be replaced when dependencies are built.
