file(REMOVE_RECURSE
  "CMakeFiles/test_argparse.dir/test_argparse.cpp.o"
  "CMakeFiles/test_argparse.dir/test_argparse.cpp.o.d"
  "test_argparse"
  "test_argparse.pdb"
  "test_argparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_argparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
