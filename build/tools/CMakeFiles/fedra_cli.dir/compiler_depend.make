# Empty compiler generated dependencies file for fedra_cli.
# This may be replaced when dependencies are built.
