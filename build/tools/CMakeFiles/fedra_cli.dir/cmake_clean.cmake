file(REMOVE_RECURSE
  "CMakeFiles/fedra_cli.dir/fedra_cli.cpp.o"
  "CMakeFiles/fedra_cli.dir/fedra_cli.cpp.o.d"
  "fedra_cli"
  "fedra_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
