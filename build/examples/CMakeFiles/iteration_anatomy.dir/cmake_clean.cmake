file(REMOVE_RECURSE
  "CMakeFiles/iteration_anatomy.dir/iteration_anatomy.cpp.o"
  "CMakeFiles/iteration_anatomy.dir/iteration_anatomy.cpp.o.d"
  "iteration_anatomy"
  "iteration_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iteration_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
