# Empty compiler generated dependencies file for iteration_anatomy.
# This may be replaced when dependencies are built.
