# Empty dependencies file for fedavg_noniid.
# This may be replaced when dependencies are built.
