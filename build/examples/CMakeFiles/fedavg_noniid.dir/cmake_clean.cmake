file(REMOVE_RECURSE
  "CMakeFiles/fedavg_noniid.dir/fedavg_noniid.cpp.o"
  "CMakeFiles/fedavg_noniid.dir/fedavg_noniid.cpp.o.d"
  "fedavg_noniid"
  "fedavg_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedavg_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
