file(REMOVE_RECURSE
  "CMakeFiles/fedra_tensor.dir/matrix.cpp.o"
  "CMakeFiles/fedra_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/fedra_tensor.dir/ops.cpp.o"
  "CMakeFiles/fedra_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/fedra_tensor.dir/serialize.cpp.o"
  "CMakeFiles/fedra_tensor.dir/serialize.cpp.o.d"
  "libfedra_tensor.a"
  "libfedra_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
