# Empty dependencies file for fedra_tensor.
# This may be replaced when dependencies are built.
