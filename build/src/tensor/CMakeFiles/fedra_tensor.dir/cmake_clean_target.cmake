file(REMOVE_RECURSE
  "libfedra_tensor.a"
)
