file(REMOVE_RECURSE
  "libfedra_sim.a"
)
