# Empty dependencies file for fedra_sim.
# This may be replaced when dependencies are built.
