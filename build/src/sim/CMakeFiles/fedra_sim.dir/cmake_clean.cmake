file(REMOVE_RECURSE
  "CMakeFiles/fedra_sim.dir/async_simulator.cpp.o"
  "CMakeFiles/fedra_sim.dir/async_simulator.cpp.o.d"
  "CMakeFiles/fedra_sim.dir/cost_model.cpp.o"
  "CMakeFiles/fedra_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/fedra_sim.dir/device.cpp.o"
  "CMakeFiles/fedra_sim.dir/device.cpp.o.d"
  "CMakeFiles/fedra_sim.dir/experiment_config.cpp.o"
  "CMakeFiles/fedra_sim.dir/experiment_config.cpp.o.d"
  "CMakeFiles/fedra_sim.dir/simulator.cpp.o"
  "CMakeFiles/fedra_sim.dir/simulator.cpp.o.d"
  "libfedra_sim.a"
  "libfedra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
