
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_simulator.cpp" "src/sim/CMakeFiles/fedra_sim.dir/async_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/fedra_sim.dir/async_simulator.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/fedra_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/fedra_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/fedra_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/fedra_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/experiment_config.cpp" "src/sim/CMakeFiles/fedra_sim.dir/experiment_config.cpp.o" "gcc" "src/sim/CMakeFiles/fedra_sim.dir/experiment_config.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/fedra_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/fedra_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fedra_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
