# Empty compiler generated dependencies file for fedra_nn.
# This may be replaced when dependencies are built.
