file(REMOVE_RECURSE
  "CMakeFiles/fedra_nn.dir/activations.cpp.o"
  "CMakeFiles/fedra_nn.dir/activations.cpp.o.d"
  "CMakeFiles/fedra_nn.dir/dense.cpp.o"
  "CMakeFiles/fedra_nn.dir/dense.cpp.o.d"
  "CMakeFiles/fedra_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/fedra_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/fedra_nn.dir/layernorm.cpp.o"
  "CMakeFiles/fedra_nn.dir/layernorm.cpp.o.d"
  "CMakeFiles/fedra_nn.dir/loss.cpp.o"
  "CMakeFiles/fedra_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedra_nn.dir/mlp.cpp.o"
  "CMakeFiles/fedra_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/fedra_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fedra_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fedra_nn.dir/regularization.cpp.o"
  "CMakeFiles/fedra_nn.dir/regularization.cpp.o.d"
  "libfedra_nn.a"
  "libfedra_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
