file(REMOVE_RECURSE
  "libfedra_nn.a"
)
