
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/a2c.cpp" "src/rl/CMakeFiles/fedra_rl.dir/a2c.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/a2c.cpp.o.d"
  "/root/repo/src/rl/ddpg.cpp" "src/rl/CMakeFiles/fedra_rl.dir/ddpg.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/ddpg.cpp.o.d"
  "/root/repo/src/rl/dqn.cpp" "src/rl/CMakeFiles/fedra_rl.dir/dqn.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/dqn.cpp.o.d"
  "/root/repo/src/rl/gae.cpp" "src/rl/CMakeFiles/fedra_rl.dir/gae.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/gae.cpp.o.d"
  "/root/repo/src/rl/policy.cpp" "src/rl/CMakeFiles/fedra_rl.dir/policy.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/policy.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "src/rl/CMakeFiles/fedra_rl.dir/ppo.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/ppo.cpp.o.d"
  "/root/repo/src/rl/prioritized_replay.cpp" "src/rl/CMakeFiles/fedra_rl.dir/prioritized_replay.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/prioritized_replay.cpp.o.d"
  "/root/repo/src/rl/replay.cpp" "src/rl/CMakeFiles/fedra_rl.dir/replay.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/replay.cpp.o.d"
  "/root/repo/src/rl/rollout.cpp" "src/rl/CMakeFiles/fedra_rl.dir/rollout.cpp.o" "gcc" "src/rl/CMakeFiles/fedra_rl.dir/rollout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedra_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedra_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
