# Empty dependencies file for fedra_rl.
# This may be replaced when dependencies are built.
