file(REMOVE_RECURSE
  "libfedra_rl.a"
)
