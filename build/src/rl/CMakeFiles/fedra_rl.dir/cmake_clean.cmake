file(REMOVE_RECURSE
  "CMakeFiles/fedra_rl.dir/a2c.cpp.o"
  "CMakeFiles/fedra_rl.dir/a2c.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/ddpg.cpp.o"
  "CMakeFiles/fedra_rl.dir/ddpg.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/dqn.cpp.o"
  "CMakeFiles/fedra_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/gae.cpp.o"
  "CMakeFiles/fedra_rl.dir/gae.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/policy.cpp.o"
  "CMakeFiles/fedra_rl.dir/policy.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/ppo.cpp.o"
  "CMakeFiles/fedra_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/prioritized_replay.cpp.o"
  "CMakeFiles/fedra_rl.dir/prioritized_replay.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/replay.cpp.o"
  "CMakeFiles/fedra_rl.dir/replay.cpp.o.d"
  "CMakeFiles/fedra_rl.dir/rollout.cpp.o"
  "CMakeFiles/fedra_rl.dir/rollout.cpp.o.d"
  "libfedra_rl.a"
  "libfedra_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
