file(REMOVE_RECURSE
  "libfedra_trace.a"
)
