file(REMOVE_RECURSE
  "CMakeFiles/fedra_trace.dir/bandwidth_trace.cpp.o"
  "CMakeFiles/fedra_trace.dir/bandwidth_trace.cpp.o.d"
  "CMakeFiles/fedra_trace.dir/fit.cpp.o"
  "CMakeFiles/fedra_trace.dir/fit.cpp.o.d"
  "CMakeFiles/fedra_trace.dir/generator.cpp.o"
  "CMakeFiles/fedra_trace.dir/generator.cpp.o.d"
  "CMakeFiles/fedra_trace.dir/loader.cpp.o"
  "CMakeFiles/fedra_trace.dir/loader.cpp.o.d"
  "CMakeFiles/fedra_trace.dir/transforms.cpp.o"
  "CMakeFiles/fedra_trace.dir/transforms.cpp.o.d"
  "libfedra_trace.a"
  "libfedra_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
