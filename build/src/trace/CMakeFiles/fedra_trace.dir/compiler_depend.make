# Empty compiler generated dependencies file for fedra_trace.
# This may be replaced when dependencies are built.
