
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/bandwidth_trace.cpp" "src/trace/CMakeFiles/fedra_trace.dir/bandwidth_trace.cpp.o" "gcc" "src/trace/CMakeFiles/fedra_trace.dir/bandwidth_trace.cpp.o.d"
  "/root/repo/src/trace/fit.cpp" "src/trace/CMakeFiles/fedra_trace.dir/fit.cpp.o" "gcc" "src/trace/CMakeFiles/fedra_trace.dir/fit.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/fedra_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/fedra_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/loader.cpp" "src/trace/CMakeFiles/fedra_trace.dir/loader.cpp.o" "gcc" "src/trace/CMakeFiles/fedra_trace.dir/loader.cpp.o.d"
  "/root/repo/src/trace/transforms.cpp" "src/trace/CMakeFiles/fedra_trace.dir/transforms.cpp.o" "gcc" "src/trace/CMakeFiles/fedra_trace.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fedra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
