file(REMOVE_RECURSE
  "libfedra_core.a"
)
