# Empty dependencies file for fedra_core.
# This may be replaced when dependencies are built.
