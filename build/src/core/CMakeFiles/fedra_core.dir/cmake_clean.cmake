file(REMOVE_RECURSE
  "CMakeFiles/fedra_core.dir/drl_controller.cpp.o"
  "CMakeFiles/fedra_core.dir/drl_controller.cpp.o.d"
  "CMakeFiles/fedra_core.dir/evaluation.cpp.o"
  "CMakeFiles/fedra_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/fedra_core.dir/experiment.cpp.o"
  "CMakeFiles/fedra_core.dir/experiment.cpp.o.d"
  "CMakeFiles/fedra_core.dir/fairness.cpp.o"
  "CMakeFiles/fedra_core.dir/fairness.cpp.o.d"
  "CMakeFiles/fedra_core.dir/offline_trainer.cpp.o"
  "CMakeFiles/fedra_core.dir/offline_trainer.cpp.o.d"
  "CMakeFiles/fedra_core.dir/online_adaptation.cpp.o"
  "CMakeFiles/fedra_core.dir/online_adaptation.cpp.o.d"
  "libfedra_core.a"
  "libfedra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
