file(REMOVE_RECURSE
  "libfedra_sched.a"
)
