file(REMOVE_RECURSE
  "CMakeFiles/fedra_sched.dir/baselines.cpp.o"
  "CMakeFiles/fedra_sched.dir/baselines.cpp.o.d"
  "CMakeFiles/fedra_sched.dir/deadline_solver.cpp.o"
  "CMakeFiles/fedra_sched.dir/deadline_solver.cpp.o.d"
  "CMakeFiles/fedra_sched.dir/predictive.cpp.o"
  "CMakeFiles/fedra_sched.dir/predictive.cpp.o.d"
  "libfedra_sched.a"
  "libfedra_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
