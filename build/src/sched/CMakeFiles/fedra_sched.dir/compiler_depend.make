# Empty compiler generated dependencies file for fedra_sched.
# This may be replaced when dependencies are built.
