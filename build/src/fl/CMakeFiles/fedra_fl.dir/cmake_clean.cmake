file(REMOVE_RECURSE
  "CMakeFiles/fedra_fl.dir/async_fedavg.cpp.o"
  "CMakeFiles/fedra_fl.dir/async_fedavg.cpp.o.d"
  "CMakeFiles/fedra_fl.dir/client.cpp.o"
  "CMakeFiles/fedra_fl.dir/client.cpp.o.d"
  "CMakeFiles/fedra_fl.dir/compression.cpp.o"
  "CMakeFiles/fedra_fl.dir/compression.cpp.o.d"
  "CMakeFiles/fedra_fl.dir/dataset.cpp.o"
  "CMakeFiles/fedra_fl.dir/dataset.cpp.o.d"
  "CMakeFiles/fedra_fl.dir/fedavg.cpp.o"
  "CMakeFiles/fedra_fl.dir/fedavg.cpp.o.d"
  "CMakeFiles/fedra_fl.dir/selection.cpp.o"
  "CMakeFiles/fedra_fl.dir/selection.cpp.o.d"
  "libfedra_fl.a"
  "libfedra_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
