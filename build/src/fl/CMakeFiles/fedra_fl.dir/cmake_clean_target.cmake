file(REMOVE_RECURSE
  "libfedra_fl.a"
)
