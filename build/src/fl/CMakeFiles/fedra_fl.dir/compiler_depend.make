# Empty compiler generated dependencies file for fedra_fl.
# This may be replaced when dependencies are built.
