file(REMOVE_RECURSE
  "libfedra_util.a"
)
