file(REMOVE_RECURSE
  "CMakeFiles/fedra_util.dir/argparse.cpp.o"
  "CMakeFiles/fedra_util.dir/argparse.cpp.o.d"
  "CMakeFiles/fedra_util.dir/csv.cpp.o"
  "CMakeFiles/fedra_util.dir/csv.cpp.o.d"
  "CMakeFiles/fedra_util.dir/logging.cpp.o"
  "CMakeFiles/fedra_util.dir/logging.cpp.o.d"
  "CMakeFiles/fedra_util.dir/rng.cpp.o"
  "CMakeFiles/fedra_util.dir/rng.cpp.o.d"
  "CMakeFiles/fedra_util.dir/stats.cpp.o"
  "CMakeFiles/fedra_util.dir/stats.cpp.o.d"
  "CMakeFiles/fedra_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fedra_util.dir/thread_pool.cpp.o.d"
  "libfedra_util.a"
  "libfedra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
