# Empty dependencies file for fedra_util.
# This may be replaced when dependencies are built.
