# Empty dependencies file for fedra_env.
# This may be replaced when dependencies are built.
