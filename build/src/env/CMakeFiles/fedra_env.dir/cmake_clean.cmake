file(REMOVE_RECURSE
  "CMakeFiles/fedra_env.dir/fl_env.cpp.o"
  "CMakeFiles/fedra_env.dir/fl_env.cpp.o.d"
  "CMakeFiles/fedra_env.dir/normalizer.cpp.o"
  "CMakeFiles/fedra_env.dir/normalizer.cpp.o.d"
  "libfedra_env.a"
  "libfedra_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
