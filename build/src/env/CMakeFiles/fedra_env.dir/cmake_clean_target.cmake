file(REMOVE_RECURSE
  "libfedra_env.a"
)
